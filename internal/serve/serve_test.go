package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dnn"
	"repro/internal/simgpu"
)

// buildFrozen is a small classifier (with a dropout for the fold path)
// frozen for serving. Identical seeds give identical weights, so two
// calls produce servers that must answer bitwise identically.
func buildFrozen(t testing.TB, batch int, seed int64) (*dnn.Net, *dnn.FrozenNet) {
	t.Helper()
	ctx := dnn.NewContext(dnn.HostLauncher{}, seed)
	ic1 := dnn.IP(5)
	ic1.Seed = seed
	ic2 := dnn.IP(3)
	ic2.Seed = seed + 1
	net, err := dnn.NewNet("serve-test").
		Input("data", batch, 6).
		Add(dnn.NewIP("ip1", ic1), []string{"data"}, []string{"h"}).
		Add(dnn.NewReLU("relu"), []string{"h"}, []string{"hr"}).
		Add(dnn.NewDropout("drop", 0.4), []string{"hr"}, []string{"hd"}).
		Add(dnn.NewIP("ip2", ic2), []string{"hd"}, []string{"scores"}).
		Build(ctx)
	if err != nil {
		t.Fatal(err)
	}
	fz, err := dnn.Freeze(net)
	if err != nil {
		t.Fatal(err)
	}
	return net, fz
}

// reference computes the expected answer for one sample on a private
// frozen twin: the sample in row 0, everything else zero. Per-sample
// independence makes this the answer regardless of batch placement.
func reference(t testing.TB, batch int, seed int64, sample []float32) []float32 {
	t.Helper()
	_, fz := buildFrozen(t, batch, seed)
	in := make([]float32, fz.Blob("data").Count())
	copy(in, sample)
	if err := fz.SetInput("data", in); err != nil {
		t.Fatal(err)
	}
	if err := fz.Forward(dnn.NewContext(dnn.HostLauncher{}, 1)); err != nil {
		t.Fatal(err)
	}
	out, err := fz.Output("scores")
	if err != nil {
		t.Fatal(err)
	}
	return append([]float32(nil), out[:3]...)
}

func assertRowBits(t *testing.T, got, want []float32, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: row length %d vs %d", what, len(got), len(want))
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s[%d]: %08x vs %08x", what, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// TestServeDynamicBatching: concurrent single-sample clients, answers
// bitwise equal to a clean single-sample reference, and the batcher
// actually coalesces (fewer batches than requests).
func TestServeDynamicBatching(t *testing.T) {
	const batch, seed, nReq = 4, 601, 32
	_, fz := buildFrozen(t, batch, seed)
	srv, err := New(fz, dnn.NewContext(dnn.HostLauncher{}, 1), Config{
		MaxBatch: batch,
		MaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	gen := NewLoadGen(seed, time.Millisecond)
	var wg sync.WaitGroup
	results := make([][]float32, nReq)
	errs := make([]error, nReq)
	for id := 0; id < nReq; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out, err := srv.Predict(gen.Sample(id, 0, 6))
			if err != nil {
				errs[id] = err
				return
			}
			results[id] = out[0]
		}(id)
	}
	wg.Wait()
	for id := 0; id < nReq; id++ {
		if errs[id] != nil {
			t.Fatalf("request %d: %v", id, errs[id])
		}
		assertRowBits(t, results[id], reference(t, batch, seed, gen.Sample(id, 0, 6)),
			fmt.Sprintf("request %d", id))
	}
	st := srv.Stats()
	if st.Requests != nReq {
		t.Fatalf("requests = %d, want %d", st.Requests, nReq)
	}
	if st.Batches >= nReq {
		t.Fatalf("batches = %d for %d requests: no coalescing happened", st.Batches, nReq)
	}
	if st.Samples != nReq || st.Failures != 0 {
		t.Fatalf("samples=%d failures=%d", st.Samples, st.Failures)
	}
	if st.ReqP50 <= 0 || st.ReqP99 < st.ReqP50 || st.BatchP50 <= 0 {
		t.Fatalf("latency quantiles not recorded: %+v", st)
	}
}

// TestServeDeadlineFlush: a lone request in a MaxBatch=8 server must be
// answered by the deadline flush, not wait for a full batch forever.
func TestServeDeadlineFlush(t *testing.T) {
	_, fz := buildFrozen(t, 8, 602)
	srv, err := New(fz, dnn.NewContext(dnn.HostLauncher{}, 1), Config{
		MaxDelay: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := srv.Predict(make([]float32, 6)); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadline flush never fired")
	}
	if st := srv.Stats(); st.Batches != 1 || st.Samples != 1 {
		t.Fatalf("stats after lone request: %+v", st)
	}
}

// TestServeGreedyFlush: MaxDelay < 0 answers immediately with whatever is
// queued.
func TestServeGreedyFlush(t *testing.T) {
	_, fz := buildFrozen(t, 8, 603)
	srv, err := New(fz, dnn.NewContext(dnn.HostLauncher{}, 1), Config{MaxDelay: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Predict(make([]float32, 6)); err != nil {
		t.Fatal(err)
	}
	if st := srv.Stats(); st.Requests != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestServeValidation(t *testing.T) {
	_, fz := buildFrozen(t, 2, 604)
	srv, err := New(fz, dnn.NewContext(dnn.HostLauncher{}, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Predict(); err == nil {
		t.Fatal("no samples accepted")
	}
	if _, err := srv.Predict(make([]float32, 5)); err == nil {
		t.Fatal("short sample accepted")
	}
	if got := srv.Inputs(); len(got) != 1 || got[0] != "data" {
		t.Fatalf("inputs = %v", got)
	}
	if got := srv.Outputs(); len(got) != 1 || got[0] != "scores" {
		t.Fatalf("outputs = %v", got)
	}
	if got := srv.RowSizes(); len(got) != 1 || got[0] != 6 {
		t.Fatalf("row sizes = %v", got)
	}
}

func TestServeClose(t *testing.T) {
	_, fz := buildFrozen(t, 2, 605)
	srv, err := New(fz, dnn.NewContext(dnn.HostLauncher{}, 1), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Predict(make([]float32, 6)); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	if _, err := srv.Predict(make([]float32, 6)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Predict after Close = %v, want ErrClosed", err)
	}
}

// flakyLauncher fails every failEvery-th kernel launch with a transient
// error before any math runs — a deterministic device-fault storm at the
// serving layer.
type flakyLauncher struct {
	dnn.HostLauncher
	every int32
	count atomic.Int32
	fails atomic.Int32
}

var errFlaky = errors.New("flaky: injected transient launch fault")

func (f *flakyLauncher) Launch(k *simgpu.Kernel, chain int) error {
	if f.count.Add(1)%f.every == 0 {
		f.fails.Add(1)
		return fmt.Errorf("launch %s: %w", k.Name, errFlaky)
	}
	return f.HostLauncher.Launch(k, chain)
}

// TestServeFaultStormRetriesBatch: under injected transient faults the
// batcher retries failed batches in place — every concurrent request is
// answered, bitwise equal to the fault-free reference, none dropped and
// none reordered within its retried batch.
func TestServeFaultStormRetriesBatch(t *testing.T) {
	const batch, seed, nReq = 4, 606, 24
	_, fz := buildFrozen(t, batch, seed)
	fl := &flakyLauncher{every: 7}
	srv, err := New(fz, dnn.NewContext(fl, 1), Config{
		MaxBatch:  batch,
		MaxDelay:  time.Millisecond,
		Retries:   10,
		Transient: func(err error) bool { return errors.Is(err, errFlaky) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	gen := NewLoadGen(seed, 500*time.Microsecond)
	var wg sync.WaitGroup
	results := make([][]float32, nReq)
	errs := make([]error, nReq)
	for id := 0; id < nReq; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out, err := srv.Predict(gen.Sample(id, 0, 6))
			if err != nil {
				errs[id] = err
				return
			}
			results[id] = out[0]
		}(id)
	}
	wg.Wait()
	for id := 0; id < nReq; id++ {
		if errs[id] != nil {
			t.Fatalf("request %d dropped: %v", id, errs[id])
		}
		assertRowBits(t, results[id], reference(t, batch, seed, gen.Sample(id, 0, 6)),
			fmt.Sprintf("request %d under faults", id))
	}
	if fl.fails.Load() == 0 {
		t.Fatal("fault storm injected nothing")
	}
	st := srv.Stats()
	if st.Retries == 0 {
		t.Fatalf("no batch retries recorded despite %d injected faults", fl.fails.Load())
	}
	if st.Failures != 0 || st.Requests != nReq {
		t.Fatalf("stats under faults: %+v", st)
	}
}

// TestServeNonTransientFails: a persistent error is answered to every
// request in the batch, not retried forever.
func TestServeNonTransientFails(t *testing.T) {
	_, fz := buildFrozen(t, 2, 607)
	fl := &flakyLauncher{every: 1} // every launch fails
	srv, err := New(fz, dnn.NewContext(fl, 1), Config{
		MaxDelay:  time.Millisecond,
		Retries:   2,
		Transient: func(error) bool { return false },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.Predict(make([]float32, 6)); !errors.Is(err, errFlaky) {
		t.Fatalf("want the injected error surfaced, got %v", err)
	}
	if st := srv.Stats(); st.Failures != 1 || st.Requests != 0 {
		t.Fatalf("failure accounting: %+v", st)
	}
}

// TestServeLedgerObserver: wiring a *core.Ledger as the Observer lands
// serving counters in the runtime's overhead ledger.
func TestServeLedgerObserver(t *testing.T) {
	led := &core.Ledger{}
	var _ Observer = led // compile-time interface check
	_, fz := buildFrozen(t, 2, 608)
	srv, err := New(fz, dnn.NewContext(dnn.HostLauncher{}, 1), Config{
		MaxDelay: -1,
		Observer: led,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := srv.Predict(make([]float32, 6)); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	snap := led.Snapshot()
	if snap.ServeRequests != 3 || snap.ServeBatches == 0 || snap.ServeSamples != 3 {
		t.Fatalf("ledger serving counters: %s", snap.Serving())
	}
	if snap.ServeReqP50 <= 0 || snap.ServeReqP99 < snap.ServeReqP50 {
		t.Fatalf("ledger quantiles: %s", snap.Serving())
	}
}

// TestServeCloseDrainsPending: requests pending when Close lands are
// answered by the shutdown flush, not dropped. With MaxBatch=4 and a
// deadline that never fires, 6 requests leave a partial batch of 2 that
// only Close can flush.
func TestServeCloseDrainsPending(t *testing.T) {
	const nReq = 6
	_, fz := buildFrozen(t, 4, 609)
	srv, err := New(fz, dnn.NewContext(dnn.HostLauncher{}, 1), Config{
		MaxBatch: 4,
		MaxDelay: time.Hour, // deadline never fires: only batch-full or Close flushes
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var answered atomic.Int32
	for id := 0; id < nReq; id++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := srv.Predict(make([]float32, 6)); err == nil {
				answered.Add(1)
			}
		}()
	}
	time.Sleep(50 * time.Millisecond) // let every request enqueue
	srv.Close()
	wg.Wait()
	if answered.Load() != nReq {
		t.Fatalf("Close answered %d of %d pending requests", answered.Load(), nReq)
	}
}

// TestPredictContextMatchesPredict: the context-aware entry point answers
// bitwise what Predict answers.
func TestPredictContextMatchesPredict(t *testing.T) {
	const batch, seed = 4, 701
	_, fz := buildFrozen(t, batch, seed)
	srv, err := New(fz, dnn.NewContext(dnn.HostLauncher{}, 1), Config{MaxBatch: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sample := []float32{0.5, -1, 2, 0.25, -0.75, 1.5}
	want := reference(t, batch, seed, sample)
	got, err := srv.PredictContext(context.Background(), sample)
	if err != nil {
		t.Fatal(err)
	}
	assertRowBits(t, got[0], want, "PredictContext scores")
}

// blockingObserver parks the batcher inside flush until released, so tests
// can deterministically fill the admission queue behind it.
type blockingObserver struct {
	entered chan struct{}
	release chan struct{}
}

func (o *blockingObserver) ServeRequest(time.Duration) {}
func (o *blockingObserver) ServeBatch(int, time.Duration) {
	select {
	case o.entered <- struct{}{}:
	default: // later flushes (after release) have no listener
	}
	<-o.release
}

// TestPredictContextShedsWhenOverloaded: with the batcher wedged and the
// admission queue full, PredictContext fails fast with ErrOverloaded (and
// the shed shows up in Stats), while the queued request is still answered
// once the batcher frees up.
func TestPredictContextShedsWhenOverloaded(t *testing.T) {
	const batch, seed = 4, 702
	_, fz := buildFrozen(t, batch, seed)
	obs := &blockingObserver{entered: make(chan struct{}), release: make(chan struct{})}
	srv, err := New(fz, dnn.NewContext(dnn.HostLauncher{}, 1), Config{
		MaxBatch: 1,
		Queue:    1,
		MaxDelay: -1, // greedy: flush immediately
		Observer: obs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sample := []float32{1, 2, 3, 4, 5, 6}

	// First request flushes and wedges the batcher inside the observer.
	first := make(chan error, 1)
	go func() {
		_, err := srv.Predict(sample)
		first <- err
	}()
	<-obs.entered

	// With the batcher wedged, admitted probes stay parked in the 1-deep
	// queue; each uses a short deadline so the test never blocks on them.
	// Once a probe occupies the queue, the next one must shed.
	shed := false
	for i := 0; i < 200 && !shed; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		_, err := srv.PredictContext(ctx, sample)
		cancel()
		shed = errors.Is(err, ErrOverloaded)
	}
	if !shed {
		t.Fatal("queue never filled: no ErrOverloaded")
	}
	if got := srv.Stats().Shed; got < 1 {
		t.Fatalf("Stats().Shed = %d, want ≥ 1", got)
	}

	close(obs.release)
	if err := <-first; err != nil {
		t.Fatalf("first request failed: %v", err)
	}
}

// TestPredictContextCanceled: a request canceled while queued returns the
// context error to its caller, and the batcher sheds it at flush time
// without computing it.
func TestPredictContextCanceled(t *testing.T) {
	const batch, seed = 4, 703
	_, fz := buildFrozen(t, batch, seed)
	srv, err := New(fz, dnn.NewContext(dnn.HostLauncher{}, 1), Config{
		MaxBatch: batch,
		MaxDelay: time.Hour, // park the partial batch so cancellation wins
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := srv.PredictContext(ctx, []float32{1, 2, 3, 4, 5, 6})
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled request returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled request never returned")
	}
}
