// Package simgpu is a discrete-event simulator of a CUDA-capable GPU. It is
// the hardware substrate for this reproduction of GLP4NN (ICPP 2018): the
// paper's results depend on concurrent kernel execution on NVIDIA devices
// (Tesla K40C, Tesla P100, Titan XP), which pure Go cannot drive natively.
//
// The simulator models the first-order mechanisms the paper's gains and
// losses come from:
//
//   - per-SM occupancy limits (resident threads, resident blocks, shared
//     memory) that determine how many thread blocks — possibly from
//     different kernels — co-reside on one SM;
//   - the architecture's maximum number of concurrent kernels (hardware
//     work queues, Table 1 of the paper);
//   - CUDA stream semantics: in-order execution within a stream, potential
//     overlap across streams, legacy default-stream barriers;
//   - a host dispatch timeline with a fixed per-launch overhead T_launch
//     (the quantity the paper's Eq. 7 compares kernel durations against);
//   - a two-resource progress model: SM compute throughput and global
//     memory bandwidth are shared, work-conservingly, among all resident
//     block cohorts.
//
// All timing is virtual (an int-free float64 nanosecond clock); the kernel
// *computation* runs eagerly on the host when a kernel carries a closure, so
// numerical results are real while performance results are simulated.
package simgpu

import (
	"fmt"
	"sort"
	"time"
)

// Arch describes one GPU microarchitecture generation. The catalog mirrors
// Table 1 of the paper ("Overview of GPU architecture features").
type Arch struct {
	Name                 string
	CUDAStreams          bool
	DynamicParallelism   bool
	MaxConcurrentKernels int
	UVM                  bool
	TensorCores          bool
}

// Architectures is Table 1 of the paper.
var Architectures = []Arch{
	{Name: "Tesla", CUDAStreams: false, DynamicParallelism: false, MaxConcurrentKernels: 1, UVM: false, TensorCores: false},
	{Name: "Fermi", CUDAStreams: true, DynamicParallelism: false, MaxConcurrentKernels: 16, UVM: false, TensorCores: false},
	{Name: "Kepler", CUDAStreams: true, DynamicParallelism: true, MaxConcurrentKernels: 32, UVM: false, TensorCores: false},
	{Name: "Maxwell", CUDAStreams: true, DynamicParallelism: true, MaxConcurrentKernels: 16, UVM: false, TensorCores: false},
	{Name: "Pascal", CUDAStreams: true, DynamicParallelism: true, MaxConcurrentKernels: 128, UVM: true, TensorCores: false},
	{Name: "Volta", CUDAStreams: true, DynamicParallelism: true, MaxConcurrentKernels: 128, UVM: true, TensorCores: true},
}

// ArchByName returns the named architecture entry.
func ArchByName(name string) (Arch, bool) {
	for _, a := range Architectures {
		if a.Name == name {
			return a, true
		}
	}
	return Arch{}, false
}

// DeviceSpec is a concrete GPU model. The three catalog entries mirror
// Table 3 of the paper ("Hardware profile"). Fields beyond Table 3 (resident
// thread/block limits, warp size, launch overhead, latency floor) use the
// vendor-documented values for the generation, and the timing-only knobs are
// calibrated so single-kernel layer times land in the paper's reported
// magnitude (see DESIGN.md §6).
type DeviceSpec struct {
	Name string
	Arch string // key into Architectures

	SMCount    int
	CoresPerSM int
	ClockGHz   float64

	MemGB            int
	MemBandwidthGBps float64
	MemType          string

	SharedMemPerSMKB int // paper Table 3: "L1 Cache / Shared Memory per SM"

	MaxThreadsPerSM    int
	MaxBlocksPerSM     int // ρ_max in the paper's Table 2
	MaxThreadsPerBlock int
	RegistersPerSM     int
	WarpSize           int

	// LaunchOverhead is the host-side cost of one kernel launch (T_launch
	// in the paper's Eq. 7).
	LaunchOverhead time.Duration
	// KernelLatencyFloor is the minimum wall time of any kernel, modeling
	// fixed front-end costs.
	KernelLatencyFloor time.Duration
	// StreamCreateOverhead is the host cost of creating one CUDA stream
	// (paid when the stream pool is initialized).
	StreamCreateOverhead time.Duration
	// SyncOverhead is the host cost of a device or stream synchronization
	// call, in addition to any waiting.
	SyncOverhead time.Duration
	// MemSaturationOccupancy is the fraction of the device's maximum
	// resident threads needed to saturate DRAM bandwidth; below it the
	// achievable bandwidth scales linearly with resident threads.
	MemSaturationOccupancy float64
	// PCIeBandwidthGBps is the host↔device copy bandwidth (0 defaults to
	// an effective 16-lane PCIe 3.0 link).
	PCIeBandwidthGBps float64
	// MemcpyLatency is the fixed setup cost of one async copy.
	MemcpyLatency time.Duration
}

// PCIeBandwidth returns the host↔device bandwidth in bytes/second.
func (s DeviceSpec) PCIeBandwidth() float64 {
	if s.PCIeBandwidthGBps <= 0 {
		return 12e9
	}
	return s.PCIeBandwidthGBps * 1e9
}

// MemcpyDuration returns the modeled device time of one host↔device copy
// of the given size: the fixed async-copy setup latency plus the transfer
// at PCIe bandwidth (the same first-order model Device.MemcpyHostToDevice
// charges to the timeline).
func (s DeviceSpec) MemcpyDuration(bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	return s.MemcpyLatency + time.Duration(float64(bytes)/s.PCIeBandwidth()*1e9)
}

// MaxConcurrentKernels returns the architecture's hardware-queue limit (C in
// the paper's Eq. 6).
func (s DeviceSpec) MaxConcurrentKernels() int {
	a, ok := ArchByName(s.Arch)
	if !ok || a.MaxConcurrentKernels <= 0 {
		return 1
	}
	return a.MaxConcurrentKernels
}

// PeakFlopsPerSM returns single-precision FLOP/s of one SM (FMA counted as
// two operations).
func (s DeviceSpec) PeakFlopsPerSM() float64 {
	return float64(s.CoresPerSM) * 2 * s.ClockGHz * 1e9
}

// PeakFlops returns device-wide single-precision FLOP/s.
func (s DeviceSpec) PeakFlops() float64 {
	return s.PeakFlopsPerSM() * float64(s.SMCount)
}

// MemBandwidth returns DRAM bandwidth in bytes per second.
func (s DeviceSpec) MemBandwidth() float64 {
	return s.MemBandwidthGBps * 1e9
}

// SharedMemPerSM returns shared memory per SM in bytes (sm_max).
func (s DeviceSpec) SharedMemPerSM() int {
	return s.SharedMemPerSMKB * 1024
}

// Validate checks the spec for internally consistent values.
func (s DeviceSpec) Validate() error {
	switch {
	case s.SMCount <= 0:
		return fmt.Errorf("simgpu: %s: SMCount must be positive", s.Name)
	case s.CoresPerSM <= 0:
		return fmt.Errorf("simgpu: %s: CoresPerSM must be positive", s.Name)
	case s.ClockGHz <= 0:
		return fmt.Errorf("simgpu: %s: ClockGHz must be positive", s.Name)
	case s.MaxThreadsPerSM <= 0 || s.MaxBlocksPerSM <= 0 || s.MaxThreadsPerBlock <= 0:
		return fmt.Errorf("simgpu: %s: occupancy limits must be positive", s.Name)
	case s.WarpSize <= 0:
		return fmt.Errorf("simgpu: %s: WarpSize must be positive", s.Name)
	case s.MemBandwidthGBps <= 0:
		return fmt.Errorf("simgpu: %s: MemBandwidthGBps must be positive", s.Name)
	case s.SharedMemPerSMKB < 0:
		return fmt.Errorf("simgpu: %s: SharedMemPerSMKB must be non-negative", s.Name)
	}
	if _, ok := ArchByName(s.Arch); !ok {
		return fmt.Errorf("simgpu: %s: unknown architecture %q", s.Name, s.Arch)
	}
	return nil
}

// Catalog entries for the paper's three test machines (Table 3).
var (
	// TeslaK40C is the Kepler-generation card of the paper's first machine.
	TeslaK40C = DeviceSpec{
		Name: "K40C", Arch: "Kepler",
		SMCount: 15, CoresPerSM: 192, ClockGHz: 0.745,
		MemGB: 12, MemBandwidthGBps: 288, MemType: "GDDR5",
		SharedMemPerSMKB:       48,
		MaxThreadsPerSM:        2048,
		MaxBlocksPerSM:         16,
		MaxThreadsPerBlock:     1024,
		RegistersPerSM:         65536,
		WarpSize:               32,
		LaunchOverhead:         9 * time.Microsecond,
		KernelLatencyFloor:     4 * time.Microsecond,
		StreamCreateOverhead:   14 * time.Microsecond,
		SyncOverhead:           6 * time.Microsecond,
		MemSaturationOccupancy: 0.25,
		PCIeBandwidthGBps:      12,
		MemcpyLatency:          8 * time.Microsecond,
	}

	// TeslaP100 is the Pascal-generation card of the paper's second machine.
	TeslaP100 = DeviceSpec{
		Name: "P100", Arch: "Pascal",
		SMCount: 56, CoresPerSM: 64, ClockGHz: 1.189,
		MemGB: 12, MemBandwidthGBps: 549, MemType: "HBM2.0",
		SharedMemPerSMKB:       64,
		MaxThreadsPerSM:        2048,
		MaxBlocksPerSM:         32,
		MaxThreadsPerBlock:     1024,
		RegistersPerSM:         65536,
		WarpSize:               32,
		LaunchOverhead:         6 * time.Microsecond,
		KernelLatencyFloor:     3 * time.Microsecond,
		StreamCreateOverhead:   10 * time.Microsecond,
		SyncOverhead:           4 * time.Microsecond,
		MemSaturationOccupancy: 0.25,
		PCIeBandwidthGBps:      12,
		MemcpyLatency:          8 * time.Microsecond,
	}

	// TitanXP is the Pascal-generation card of the paper's third machine.
	TitanXP = DeviceSpec{
		Name: "TitanXP", Arch: "Pascal",
		SMCount: 30, CoresPerSM: 128, ClockGHz: 1.455,
		MemGB: 12, MemBandwidthGBps: 547.7, MemType: "GDDR5X",
		SharedMemPerSMKB:       48,
		MaxThreadsPerSM:        2048,
		MaxBlocksPerSM:         32,
		MaxThreadsPerBlock:     1024,
		RegistersPerSM:         65536,
		WarpSize:               32,
		LaunchOverhead:         5500 * time.Nanosecond,
		KernelLatencyFloor:     3 * time.Microsecond,
		StreamCreateOverhead:   10 * time.Microsecond,
		SyncOverhead:           4 * time.Microsecond,
		MemSaturationOccupancy: 0.25,
		PCIeBandwidthGBps:      12,
		MemcpyLatency:          8 * time.Microsecond,
	}
)

// DeviceCatalog is the paper's hardware profile (Table 3), in paper order.
var DeviceCatalog = []DeviceSpec{TeslaK40C, TeslaP100, TitanXP}

// DeviceByName returns the catalog spec with the given name.
func DeviceByName(name string) (DeviceSpec, bool) {
	for _, d := range DeviceCatalog {
		if d.Name == name {
			return d, true
		}
	}
	return DeviceSpec{}, false
}

// CatalogNames lists the catalog device names sorted alphabetically.
func CatalogNames() []string {
	names := make([]string, 0, len(DeviceCatalog))
	for _, d := range DeviceCatalog {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}
