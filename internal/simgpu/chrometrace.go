package simgpu

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: the stand-in for the offline visualization the
// paper contrasts against (NVIDIA Visual Profiler, Vampir). WriteChromeTrace
// serializes kernel records in the Trace Event Format, loadable in
// chrome://tracing or Perfetto, with one row per CUDA stream.

// traceEvent is one complete ("X") event in the Chrome trace format.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// traceMeta is a metadata ("M") event naming a pid/tid row.
type traceMeta struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// WriteChromeTrace writes the records as a JSON trace-event array. The
// device id becomes the pid, stream ids become tids.
func WriteChromeTrace(w io.Writer, deviceName string, deviceID int, records []KernelRecord) error {
	events := make([]interface{}, 0, len(records)+8)
	events = append(events, traceMeta{
		Name: "process_name", Ph: "M", PID: deviceID,
		Args: map[string]string{"name": "GPU " + deviceName},
	})
	streams := map[int]bool{}
	for _, r := range records {
		streams[r.StreamID] = true
	}
	ids := make([]int, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		name := fmt.Sprintf("stream %d", id)
		if id == 0 {
			name = "default stream"
		}
		events = append(events, traceMeta{
			Name: "thread_name", Ph: "M", PID: deviceID, TID: id,
			Args: map[string]string{"name": name},
		})
	}
	for _, r := range records {
		events = append(events, traceEvent{
			Name: r.Name,
			Cat:  "kernel",
			Ph:   "X",
			TS:   float64(r.Start.Nanoseconds()) / 1e3,
			Dur:  float64(r.Duration().Nanoseconds()) / 1e3,
			PID:  deviceID,
			TID:  r.StreamID,
			Args: map[string]string{
				"tag":   r.Tag,
				"grid":  r.Grid.String(),
				"block": r.Block.String(),
				"regs":  fmt.Sprintf("%d", r.RegsPerThread),
				"smem":  fmt.Sprintf("%dB", r.SharedMemBytes),
				"flops": fmt.Sprintf("%.3g", r.FLOPs),
				"bytes": fmt.Sprintf("%.3g", r.Bytes),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}

// ExportChromeTrace drains the device and writes its retained trace.
func (d *Device) ExportChromeTrace(w io.Writer) error {
	recs, err := d.Trace()
	if err != nil {
		return err
	}
	return WriteChromeTrace(w, d.Name(), d.ID(), recs)
}
