package simgpu

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestChromeTraceExport(t *testing.T) {
	d := NewDevice(testSpec)
	s1, s2 := mustStream(d), mustStream(d)
	launchOK(t, d, &Kernel{
		Name: "im2col_gpu", Tag: "conv1/n0",
		Config: LaunchConfig{Grid: D1(4), Block: D1(128), RegsPerThread: 33},
		Cost:   Cost{Bytes: 10000},
	}, s1)
	launchOK(t, d, &Kernel{
		Name: "sgemm_64x64", Tag: "conv1/n1",
		Config: LaunchConfig{Grid: D2(2, 2), Block: D1(256), SharedMemBytes: 8192},
		Cost:   Cost{FLOPs: 100000},
	}, s2)

	var buf bytes.Buffer
	if err := d.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}

	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	var kernels, metas int
	names := map[string]bool{}
	for _, e := range events {
		switch e["ph"] {
		case "X":
			kernels++
			names[e["name"].(string)] = true
			if e["dur"].(float64) <= 0 {
				t.Fatalf("non-positive duration: %v", e)
			}
			args := e["args"].(map[string]interface{})
			if args["grid"] == "" || args["regs"] == "" {
				t.Fatalf("missing args: %v", args)
			}
		case "M":
			metas++
		}
	}
	if kernels != 2 {
		t.Fatalf("kernel events = %d, want 2", kernels)
	}
	if !names["im2col_gpu"] || !names["sgemm_64x64"] {
		t.Fatalf("kernel names = %v", names)
	}
	if metas < 3 { // process + two stream rows
		t.Fatalf("metadata events = %d, want ≥3", metas)
	}
}

func TestChromeTraceEmpty(t *testing.T) {
	d := NewDevice(testSpec)
	var buf bytes.Buffer
	if err := d.ExportChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]interface{}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 { // just the process name
		t.Fatalf("events = %d", len(events))
	}
}
