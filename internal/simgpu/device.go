package simgpu

import (
	"fmt"
	"sync"
	"time"
)

// Device is one simulated GPU. All methods are safe for concurrent use: the
// device clock, stream tails, and event engine live behind one mutex, so
// launches and synchronizes may arrive from any goroutine (the data-parallel
// trainer drives each replica's device from its own goroutine). The launch
// order observed under the device lock is the order that defines the virtual
// timeline. Kernel closures run inline at launch on the *caller's*
// goroutine, before the lock is taken — which is exactly what lets the
// host-side parallel engine (internal/hostpool) strip a closure, launch the
// timing-only kernel in program order, and run the math elsewhere: the
// timeline is unchanged while host work proceeds in parallel.
type Device struct {
	spec DeviceSpec
	id   int

	mu  sync.Mutex
	eng *engine

	def         *Stream
	nextStream  int
	activeStrms int

	host float64 // host dispatch timeline, ns
	seq  int

	// tails holds the most recent kernel per stream since the last
	// default-stream barrier; a default-stream kernel depends on exactly
	// these (stream ordering covers everything earlier), which keeps the
	// legacy-barrier dependency lists O(#streams) instead of O(#kernels).
	tails       map[int]*kernelExec
	lastDefault *kernelExec

	records   []KernelRecord
	tracing   bool
	listeners map[int]func(KernelRecord)
	nextLst   int

	launches     int64
	syncs        int64
	streamsMade  int64
	traceDropped int64
	maxTrace     int

	// inj, when non-nil, is consulted at every failable driver entry point
	// and at record completion (see fault.go). recordsLost counts records
	// the injector dropped before tracing and listeners.
	inj         Injector
	recordsLost int64
}

// Option configures a Device at construction.
type Option func(*Device)

// WithoutContention builds a device whose engine ignores resource contention
// between co-resident cohorts (the "analytic" ablation engine).
func WithoutContention() Option {
	return func(d *Device) { d.eng.contention = false }
}

// WithTraceLimit caps the number of retained kernel records (0 = unlimited).
func WithTraceLimit(n int) Option {
	return func(d *Device) { d.maxTrace = n }
}

// WithInjector attaches a fault injector (see FaultPlan): stream creation,
// launches, transfers, synchronizations and profiler records consult it and
// fail, stall, or corrupt on its schedule. nil disables injection.
func WithInjector(inj Injector) Option {
	return func(d *Device) { d.inj = inj }
}

// NewDeviceChecked builds a device from a spec, surfacing an invalid spec as
// a constructor error instead of panicking.
func NewDeviceChecked(spec DeviceSpec, opts ...Option) (*Device, error) {
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("simgpu: invalid device spec: %w", err)
	}
	d := &Device{
		spec:      spec,
		listeners: map[int]func(KernelRecord){},
		tails:     map[int]*kernelExec{},
		tracing:   true,
	}
	d.eng = newEngine(spec, true, d.onComplete)
	d.def = &Stream{id: 0, dev: d, isDefault: true}
	d.nextStream = 1
	for _, o := range opts {
		o(d)
	}
	return d, nil
}

// NewDevice builds a device from a spec. It panics on an invalid spec, which
// is a programming error for the catalog specs (valid by construction); use
// NewDeviceChecked when the spec comes from configuration or user input.
func NewDevice(spec DeviceSpec, opts ...Option) *Device {
	d, err := NewDeviceChecked(spec, opts...)
	if err != nil {
		panic(err)
	}
	return d
}

// Spec returns the device's hardware description.
func (d *Device) Spec() DeviceSpec { return d.spec }

// Name returns the device model name.
func (d *Device) Name() string { return d.spec.Name }

// SetID tags the device with a machine-local ordinal (used by Machine).
func (d *Device) SetID(id int) { d.id = id }

// ID returns the machine-local ordinal.
func (d *Device) ID() int { return d.id }

// DefaultStream returns the device's default stream.
func (d *Device) DefaultStream() *Stream { return d.def }

// CreateStream makes a new concurrent stream, charging the host-side
// creation overhead to the dispatch timeline. Under fault injection the
// device may refuse (transiently), like cudaStreamCreate under driver
// pressure.
func (d *Device) CreateStream() (*Stream, error) {
	if d.inj != nil {
		if f := d.inj.Decide(OpCreateStream, ""); f.Err != nil {
			return nil, f.Err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	s := &Stream{id: d.nextStream, dev: d}
	d.nextStream++
	d.activeStrms++
	d.streamsMade++
	d.host += float64(d.spec.StreamCreateOverhead.Nanoseconds())
	return s, nil
}

// DestroyStream releases a stream. Destroying the default stream or a
// destroyed stream returns an error.
func (d *Device) DestroyStream(s *Stream) error {
	if s.dev != d {
		return fmt.Errorf("simgpu: stream belongs to a different device")
	}
	if s.isDefault {
		return fmt.Errorf("simgpu: cannot destroy the default stream")
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s.destroyed {
		return fmt.Errorf("simgpu: double destroy of %v", s)
	}
	s.destroyed = true
	d.activeStrms--
	return nil
}

// ActiveStreams returns the number of live non-default streams.
func (d *Device) ActiveStreams() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.activeStrms
}

// Launch submits a kernel to a stream. A nil stream means the default
// stream. The kernel's host closure (if any) runs synchronously before the
// launch is recorded, so numerical side effects happen in launch order. The
// launch charges T_launch to the host dispatch timeline.
func (d *Device) Launch(k *Kernel, s *Stream) error {
	if s == nil {
		s = d.def
	}
	if s.dev != d {
		return fmt.Errorf("simgpu: launch of %q on a stream of a different device", k.Name)
	}
	if err := k.Validate(d.spec); err != nil {
		return err
	}
	// Fault decision precedes the host closure: a failed launch never
	// executes the kernel, so a retried launch runs the math exactly once —
	// the property that keeps recovery convergence-invariant even for
	// non-idempotent (accumulating) kernels.
	var hang float64
	if d.inj != nil {
		f := d.inj.Decide(OpLaunch, k.Name)
		if f.Err != nil {
			return f.Err
		}
		hang = float64(f.Delay.Nanoseconds())
	}
	if k.Fn != nil {
		k.Fn()
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if s.destroyed {
		return fmt.Errorf("simgpu: launch of %q on destroyed %v", k.Name, s)
	}

	d.host += float64(d.spec.LaunchOverhead.Nanoseconds())
	d.launches++
	d.seq++

	blocks := k.Config.Blocks()
	e := &kernelExec{
		name:          k.Name,
		tag:           k.Tag,
		cfg:           k.Config,
		seq:           d.seq,
		streamID:      s.id,
		issue:         d.host,
		totalBlocks:   blocks,
		flopsPerBlock: k.Cost.FLOPs / float64(blocks),
		bytesPerBlock: k.Cost.Bytes / float64(blocks),
		threads:       k.Config.ThreadsPerBlock(),
		smem:          k.Config.SharedMemBytes,
		extra:         hang,
	}

	// Ordering edges: stream predecessor, then default-stream semantics.
	if s.tail != nil && !s.tail.done {
		e.deps = append(e.deps, s.tail)
	}
	if s.isDefault {
		// Legacy barrier: wait for the tail of every stream that has run
		// since the previous default-stream kernel (stream ordering makes
		// those tails cover all earlier work).
		for id, tail := range d.tails {
			if tail != s.tail && !tail.done {
				e.deps = append(e.deps, tail)
			}
			delete(d.tails, id)
		}
		d.lastDefault = e
	} else if d.lastDefault != nil && !d.lastDefault.done {
		e.deps = append(e.deps, d.lastDefault)
	}

	s.tail = e
	d.tails[s.id] = e
	d.eng.enqueue(e)
	return nil
}

// memcpy enqueues a DMA transfer of the given size on a stream. Transfers
// respect stream ordering (and the default-stream barrier) but use the copy
// engines: they consume neither SM resources nor kernel queue slots.
func (d *Device) memcpy(name string, bytes int64, s *Stream) error {
	if bytes < 0 {
		return fmt.Errorf("simgpu: %s of negative size", name)
	}
	if s == nil {
		s = d.def
	}
	if s.dev != d {
		return fmt.Errorf("simgpu: %s on a stream of a different device", name)
	}
	if d.inj != nil {
		if f := d.inj.Decide(OpMemcpy, name); f.Err != nil {
			return f.Err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if s.destroyed {
		return fmt.Errorf("simgpu: %s on destroyed %v", name, s)
	}
	d.host += float64(d.spec.LaunchOverhead.Nanoseconds())
	d.launches++
	d.seq++
	dur := float64(d.spec.MemcpyLatency.Nanoseconds()) + float64(bytes)/d.spec.PCIeBandwidth()*1e9
	e := &kernelExec{
		name:          name,
		cfg:           LaunchConfig{Grid: D1(1), Block: D1(1)},
		seq:           d.seq,
		streamID:      s.id,
		issue:         d.host,
		totalBlocks:   1,
		threads:       1,
		fixedDur:      dur,
		bytesPerBlock: float64(bytes),
	}
	if s.tail != nil && !s.tail.done {
		e.deps = append(e.deps, s.tail)
	}
	if s.isDefault {
		for id, tail := range d.tails {
			if tail != s.tail && !tail.done {
				e.deps = append(e.deps, tail)
			}
			delete(d.tails, id)
		}
		d.lastDefault = e
	} else if d.lastDefault != nil && !d.lastDefault.done {
		e.deps = append(e.deps, d.lastDefault)
	}
	s.tail = e
	d.tails[s.id] = e
	d.eng.enqueue(e)
	return nil
}

// MemcpyHostToDevice models cudaMemcpyAsync(…, HostToDevice) of the given
// size on a stream (nil = default stream).
func (d *Device) MemcpyHostToDevice(bytes int64, s *Stream) error {
	return d.memcpy("memcpyHtoD", bytes, s)
}

// MemcpyDeviceToHost models cudaMemcpyAsync(…, DeviceToHost).
func (d *Device) MemcpyDeviceToHost(bytes int64, s *Stream) error {
	return d.memcpy("memcpyDtoH", bytes, s)
}

// Synchronize drains all queued work, advances the host timeline to the
// device completion time plus the synchronization overhead, and returns the
// device clock.
func (d *Device) Synchronize() (time.Duration, error) {
	if d.inj != nil {
		// A failed synchronize loses no queued work: the drain simply has
		// not happened yet, exactly like a transiently failing
		// cudaDeviceSynchronize. A later call picks the work back up.
		if f := d.inj.Decide(OpSync, ""); f.Err != nil {
			return 0, f.Err
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.eng.drain(); err != nil {
		return 0, err
	}
	d.syncs++
	if d.eng.now > d.host {
		d.host = d.eng.now
	}
	d.host += float64(d.spec.SyncOverhead.Nanoseconds())
	return time.Duration(d.eng.now), nil
}

// Now returns the device clock after draining all pending work. Like
// Synchronize it is a full barrier in virtual time.
func (d *Device) Now() (time.Duration, error) {
	t, err := d.Synchronize()
	return t, err
}

// HostTime returns the host dispatch timeline (includes launch, stream
// creation and sync overheads).
func (d *Device) HostTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return time.Duration(d.host)
}

// AdvanceHost charges host-side work (e.g. GLP4NN's profiling parse and
// MILP analysis, the paper's T_p and T_a) to the dispatch timeline: kernels
// launched afterwards cannot start earlier than this work's completion.
func (d *Device) AdvanceHost(dt time.Duration) {
	if dt <= 0 {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.host += float64(dt.Nanoseconds())
}

// ResetClocks drains pending work and resets both clocks and the trace. It
// is the experiment-boundary operation: streams stay valid.
func (d *Device) ResetClocks() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.eng.drain(); err != nil {
		return err
	}
	d.eng.reset()
	d.host = 0
	d.records = nil
	d.tails = map[int]*kernelExec{}
	d.lastDefault = nil
	d.traceDropped = 0
	// Stream tails point at completed execs; clear them so no stale deps
	// survive the reset.
	d.def.tail = nil
	return nil
}

// SetTracing switches kernel-record retention on or off (listeners always
// fire).
func (d *Device) SetTracing(on bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tracing = on
}

// Trace drains pending work and returns a copy of the retained records in
// completion order.
func (d *Device) Trace() ([]KernelRecord, error) {
	if _, err := d.Synchronize(); err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]KernelRecord, len(d.records))
	copy(out, d.records)
	return out, nil
}

// LaunchSeq returns the issue-order sequence number of the most recently
// launched kernel or memcpy (0 before the first launch). Unlike Now, it
// does not drain the engine or touch the clocks, so it is safe to sample
// mid-step: a caller can snapshot it at a host-side event and later, after
// the step's drain, recover the simulated completion time of everything
// issued up to that event from the records' Seq fields.
func (d *Device) LaunchSeq() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.seq
}

// Subscribe registers a completion listener and returns an unsubscribe
// token. Listeners run under the device lock during drains: they must not
// call device methods.
func (d *Device) Subscribe(fn func(KernelRecord)) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextLst
	d.nextLst++
	d.listeners[id] = fn
	return id
}

// Unsubscribe removes a listener registered with Subscribe.
func (d *Device) Unsubscribe(id int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.listeners, id)
}

func (d *Device) onComplete(e *kernelExec) {
	r := KernelRecord{
		Name:           e.name,
		Tag:            e.tag,
		StreamID:       e.streamID,
		Seq:            e.seq,
		Grid:           e.cfg.Grid,
		Block:          e.cfg.Block,
		RegsPerThread:  e.cfg.RegsPerThread,
		SharedMemBytes: e.cfg.SharedMemBytes,
		Queued:         time.Duration(e.issue),
		Start:          time.Duration(e.start),
		End:            time.Duration(e.end),
		FLOPs:          float64(e.totalBlocks) * e.flopsPerBlock,
		Bytes:          float64(e.totalBlocks) * e.bytesPerBlock,
	}
	if d.inj != nil {
		f := d.inj.Decide(OpRecord, e.name)
		if f.Drop {
			// Lost before it reached any buffer: neither the trace nor the
			// profiling listeners ever see it.
			d.recordsLost++
			return
		}
		if f.Truncate {
			r.Queued, r.Start, r.End = 0, 0, 0
		}
	}
	if d.tracing {
		if d.maxTrace > 0 && len(d.records) >= d.maxTrace {
			d.traceDropped++
		} else {
			d.records = append(d.records, r)
		}
	}
	for _, fn := range d.listeners {
		fn(r)
	}
}

// Stats is a snapshot of device counters, used by tests and reports.
type Stats struct {
	Launches     int64
	Syncs        int64
	StreamsMade  int64
	TraceDropped int64
	// RecordsLost counts completed kernel records the fault injector
	// dropped before tracing and profiling listeners.
	RecordsLost int64
	// ThreadNSIntegral is ∫ resident threads dt over the simulation, in
	// thread-nanoseconds; dividing by elapsed×maxResident gives achieved
	// occupancy.
	ThreadNSIntegral float64
	FLOPsRetired     float64
	BytesRetired     float64
	DeviceTime       time.Duration
}

// Stats drains pending work and returns the counter snapshot.
func (d *Device) Stats() (Stats, error) {
	if _, err := d.Synchronize(); err != nil {
		return Stats{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Launches:         d.launches,
		Syncs:            d.syncs,
		StreamsMade:      d.streamsMade,
		TraceDropped:     d.traceDropped,
		RecordsLost:      d.recordsLost,
		ThreadNSIntegral: d.eng.threadNSIntegral,
		FLOPsRetired:     d.eng.flopsRetired,
		BytesRetired:     d.eng.bytesRetired,
		DeviceTime:       time.Duration(d.eng.now),
	}, nil
}

// Machine is a host with one or more GPUs, mirroring the paper's topology:
// GLP4NN shares one resource tracker and stream manager per machine and
// gives each device a private analyzer and scheduler.
type Machine struct {
	devices []*Device
}

// NewMachine builds a machine over the given device specs.
func NewMachine(specs ...DeviceSpec) *Machine {
	m := &Machine{}
	for i, s := range specs {
		d := NewDevice(s)
		d.SetID(i)
		m.devices = append(m.devices, d)
	}
	return m
}

// NewMachineFromDevices builds a machine over pre-constructed devices (e.g.
// devices carrying fault injectors or trace limits). Device ids are
// reassigned to machine-local ordinals.
func NewMachineFromDevices(devs ...*Device) *Machine {
	m := &Machine{}
	for i, d := range devs {
		d.SetID(i)
		m.devices = append(m.devices, d)
	}
	return m
}

// Devices returns the machine's GPUs in id order.
func (m *Machine) Devices() []*Device { return m.devices }

// Device returns GPU i.
func (m *Machine) Device(i int) *Device { return m.devices[i] }

// SynchronizeAll drains every device and returns the max device clock.
func (m *Machine) SynchronizeAll() (time.Duration, error) {
	var max time.Duration
	for _, d := range m.devices {
		t, err := d.Synchronize()
		if err != nil {
			return 0, err
		}
		if t > max {
			max = t
		}
	}
	return max, nil
}
