package simgpu

import (
	"fmt"
	"math"
	"sort"
)

// timing epsilon in nanoseconds: completions within this window coincide.
const epsNS = 1e-6

// kernelExec is one launched kernel making its way through the simulated
// device: queued behind stream predecessors and default-stream barriers,
// waiting for a hardware queue slot, then admitted to SMs in block cohorts.
type kernelExec struct {
	name string
	tag  string
	cfg  LaunchConfig
	seq  int

	streamID int

	issue float64 // host time the launch call completed (ns)
	deps  []*kernelExec

	flopsPerBlock float64
	bytesPerBlock float64
	threads       int // per block
	smem          int // per block

	hasSlot       bool
	started       bool
	blocksLeft    int
	totalBlocks   int
	activeCohorts int

	// fixedDur > 0 marks a DMA transfer (memcpy): it occupies its stream
	// for exactly this long but consumes no SM resources and no hardware
	// kernel queue slot (copy engines are separate).
	fixedDur float64

	// extra is injected hang time in ns: every cohort of this kernel
	// retires no earlier than its admission plus this stall.
	extra float64

	start float64
	end   float64
	done  bool
}

func (e *kernelExec) depsDone() bool {
	for _, d := range e.deps {
		if !d.done {
			return false
		}
	}
	return true
}

// cohort is a set of homogeneous blocks of one kernel admitted together and
// retiring together. perSM holds how many of the cohort's blocks sit on each
// SM.
type cohort struct {
	exec   *kernelExec
	blocks int
	perSM  []int32

	remC float64 // remaining effective FLOPs
	remM float64 // remaining effective bytes

	rateC float64 // FLOPs per ns under the current residency
	rateM float64 // bytes per ns under the current residency

	minEnd float64 // latency floor: cohort cannot retire before this time
}

// engine is the discrete-event core. It is not safe for concurrent use; the
// owning Device serializes access.
type engine struct {
	spec DeviceSpec
	// contention=false disables resource sharing between co-resident
	// cohorts (each proceeds as if alone); used for the engine ablation.
	contention bool

	now float64 // device timeline, ns

	smThreads []int
	smBlocks  []int
	smSmem    []int

	// queues holds issued-but-not-fully-admitted kernels as per-stream
	// FIFOs: only each stream's head can possibly run next (CUDA stream
	// semantics), which keeps every scheduling scan O(#streams) instead of
	// O(#outstanding kernels).
	queues       map[int][]*kernelExec
	cohorts      []*cohort
	runningSlots int
	maxSlots     int

	onComplete func(*kernelExec)

	// utilization accounting (invariant checks and reports)
	threadNSIntegral float64 // ∫ resident threads dt
	flopsRetired     float64
	bytesRetired     float64

	peakFlopsPerSMns float64 // FLOP per ns per SM
	bwBytesPerNS     float64
	satThreads       float64 // resident threads needed to saturate DRAM
	floorNS          float64
}

func newEngine(spec DeviceSpec, contention bool, onComplete func(*kernelExec)) *engine {
	return &engine{
		spec:             spec,
		contention:       contention,
		queues:           map[int][]*kernelExec{},
		smThreads:        make([]int, spec.SMCount),
		smBlocks:         make([]int, spec.SMCount),
		smSmem:           make([]int, spec.SMCount),
		maxSlots:         spec.MaxConcurrentKernels(),
		onComplete:       onComplete,
		peakFlopsPerSMns: spec.PeakFlopsPerSM() * 1e-9,
		bwBytesPerNS:     spec.MemBandwidth() * 1e-9,
		satThreads:       spec.MemSaturationOccupancy * float64(spec.SMCount*spec.MaxThreadsPerSM),
		floorNS:          float64(spec.KernelLatencyFloor.Nanoseconds()),
	}
}

func (g *engine) reset() {
	g.now = 0
	for i := range g.smThreads {
		g.smThreads[i], g.smBlocks[i], g.smSmem[i] = 0, 0, 0
	}
	g.queues = map[int][]*kernelExec{}
	g.cohorts = nil
	g.runningSlots = 0
	g.threadNSIntegral = 0
	g.flopsRetired = 0
	g.bytesRetired = 0
}

func (g *engine) idle() bool {
	return len(g.queues) == 0 && len(g.cohorts) == 0
}

// enqueue registers a launched kernel. Deps must have lower seq numbers.
func (g *engine) enqueue(e *kernelExec) {
	e.blocksLeft = e.totalBlocks
	g.queues[e.streamID] = append(g.queues[e.streamID], e)
}

// heads returns the current stream heads in seq (launch) order.
func (g *engine) heads() []*kernelExec {
	out := make([]*kernelExec, 0, len(g.queues))
	for _, q := range g.queues {
		out = append(out, q[0])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out
}

// pop removes a fully admitted head from its stream queue.
func (g *engine) pop(e *kernelExec) {
	q := g.queues[e.streamID]
	if len(q) == 0 || q[0] != e {
		return
	}
	if len(q) == 1 {
		delete(g.queues, e.streamID)
	} else {
		g.queues[e.streamID] = q[1:]
	}
}

// drain advances the simulation until every enqueued kernel has completed.
// It returns an error only on an internal invariant violation.
func (g *engine) drain() error {
	for {
		g.admit()
		if len(g.cohorts) == 0 {
			// Nothing resident: either jump to the next arrival or stop.
			next := math.Inf(1)
			for _, q := range g.queues {
				if e := q[0]; e.depsDone() && e.issue > g.now && e.issue < next {
					next = e.issue
				}
			}
			if math.IsInf(next, 1) {
				if len(g.queues) > 0 {
					for _, q := range g.queues {
						return fmt.Errorf("simgpu: engine stalled with %d streams waiting (first %q seq=%d)",
							len(g.queues), q[0].name, q[0].seq)
					}
				}
				return nil
			}
			g.now = next
			continue
		}

		g.computeRates()

		// Next event: earliest cohort retirement or kernel arrival.
		t := math.Inf(1)
		for _, c := range g.cohorts {
			if f := g.finishEstimate(c); f < t {
				t = f
			}
		}
		for _, q := range g.queues {
			if e := q[0]; e.depsDone() && e.issue > g.now && e.issue < t {
				t = e.issue
			}
		}
		if math.IsInf(t, 1) || t < g.now-epsNS {
			return fmt.Errorf("simgpu: engine produced invalid next event time %v at now=%v", t, g.now)
		}
		if t < g.now {
			t = g.now
		}
		g.advance(t)
	}
}

// admit gives queue slots and SM residency to every waiting kernel that is
// ready, in launch order (the hardware block scheduler drains earlier grids
// first; Hyper-Q lets later kernels slip past only when the earlier ones
// cannot use the free resources).
func (g *engine) admit() {
	for _, e := range g.heads() {
		if !e.depsDone() || e.issue > g.now+epsNS {
			continue
		}
		if e.fixedDur > 0 {
			// DMA transfer: start immediately, retire after fixedDur.
			if !e.started {
				e.started = true
				e.start = g.now
				e.blocksLeft = 0
				e.activeCohorts++
				g.cohorts = append(g.cohorts, &cohort{
					exec:   e,
					perSM:  make([]int32, g.spec.SMCount),
					minEnd: g.now + e.fixedDur,
				})
			}
			g.pop(e)
			continue
		}
		if !e.hasSlot {
			if g.runningSlots >= g.maxSlots {
				continue
			}
			e.hasSlot = true
			g.runningSlots++
		}
		if e.blocksLeft > 0 {
			g.admitBlocks(e)
		}
		if e.blocksLeft == 0 {
			g.pop(e)
			if e.activeCohorts == 0 {
				// Degenerate zero-work kernel admitted and finished
				// instantly.
				g.completeKernel(e)
			}
		}
	}
}

// admitBlocks places as many of e's remaining blocks as currently fit,
// spreading them evenly over SMs (the paper's model assumption), as one
// cohort.
func (g *engine) admitBlocks(e *kernelExec) {
	n := g.spec.SMCount
	fit := make([]int, n)
	total := 0
	for s := 0; s < n; s++ {
		f := g.fitOn(s, e)
		fit[s] = f
		total += f
	}
	if total == 0 {
		return
	}
	a := e.blocksLeft
	if a > total {
		a = total
	}
	per := make([]int32, n)
	placed := 0
	// Water-filling: each block goes to the least-loaded SM that still has
	// room, which is how hardware block schedulers spread work and what
	// keeps the paper's "fill idle SMs" concurrency benefit observable.
	load := make([]int, n)
	copy(load, g.smThreads)
	for placed < a {
		best := -1
		for s := 0; s < n; s++ {
			if fit[s] > 0 && (best < 0 || load[s] < load[best]) {
				best = s
			}
		}
		if best < 0 {
			break
		}
		fit[best]--
		per[best]++
		load[best] += e.threads
		placed++
	}
	if placed == 0 {
		return
	}
	for s := 0; s < n; s++ {
		if per[s] == 0 {
			continue
		}
		g.smThreads[s] += int(per[s]) * e.threads
		g.smBlocks[s] += int(per[s])
		g.smSmem[s] += int(per[s]) * e.smem
	}
	if !e.started {
		e.started = true
		e.start = g.now
	}
	e.blocksLeft -= placed
	e.activeCohorts++
	g.cohorts = append(g.cohorts, &cohort{
		exec:   e,
		blocks: placed,
		perSM:  per,
		remC:   float64(placed) * e.flopsPerBlock,
		remM:   float64(placed) * e.bytesPerBlock,
		minEnd: g.now + g.floorNS + e.extra,
	})
}

// fitOn returns how many more blocks of e fit on SM s right now.
func (g *engine) fitOn(s int, e *kernelExec) int {
	byBlocks := g.spec.MaxBlocksPerSM - g.smBlocks[s]
	if byBlocks <= 0 {
		return 0
	}
	byThreads := (g.spec.MaxThreadsPerSM - g.smThreads[s]) / e.threads
	if byThreads <= 0 {
		return 0
	}
	n := byBlocks
	if byThreads < n {
		n = byThreads
	}
	if e.smem > 0 {
		bySmem := (g.spec.SharedMemPerSM() - g.smSmem[s]) / e.smem
		if bySmem < n {
			n = bySmem
		}
	}
	if n < 0 {
		n = 0
	}
	return n
}

// computeRates assigns each cohort its compute and memory progress rates
// under the current residency (processor sharing; see DESIGN.md §5).
func (g *engine) computeRates() {
	n := g.spec.SMCount
	cores := float64(g.spec.CoresPerSM)

	// Per-SM compute demand in resident threads, counting only cohorts that
	// still have arithmetic left.
	demand := make([]float64, n)
	if g.contention {
		for _, c := range g.cohorts {
			if c.remC <= 0 {
				continue
			}
			th := float64(c.exec.threads)
			for s, b := range c.perSM {
				if b > 0 {
					demand[s] += float64(b) * th
				}
			}
		}
	}

	// Device-wide memory demand in resident threads.
	memThreads := 0.0
	if g.contention {
		for _, c := range g.cohorts {
			if c.remM <= 0 {
				continue
			}
			memThreads += float64(c.blocks * c.exec.threads)
		}
	}
	memDenom := memThreads
	if memDenom < g.satThreads {
		memDenom = g.satThreads
	}

	for _, c := range g.cohorts {
		c.rateC, c.rateM = 0, 0
		th := float64(c.exec.threads)
		if c.remC > 0 {
			r := 0.0
			for s, b := range c.perSM {
				if b == 0 {
					continue
				}
				d := float64(b) * th
				// An SM runs at full throughput once resident-thread demand
				// covers its cores; below that, throughput scales with the
				// threads present. Under contention the demand of all
				// co-resident cohorts shares the SM proportionally; in
				// alone-mode (ablation) each cohort sees only its own demand.
				den := cores
				if g.contention {
					if demand[s] > cores {
						den = demand[s]
					}
				} else if d > cores {
					den = d
				}
				r += g.peakFlopsPerSMns * d / den
			}
			c.rateC = r
		}
		if c.remM > 0 {
			d := float64(c.blocks) * th
			den := memDenom
			if !g.contention {
				den = d
				if den < g.satThreads {
					den = g.satThreads
				}
			}
			c.rateM = g.bwBytesPerNS * d / den
		}
	}
}

// finishEstimate returns the absolute time this cohort would retire if the
// current rates held.
func (g *engine) finishEstimate(c *cohort) float64 {
	dt := 0.0
	if c.remC > 0 {
		if c.rateC <= 0 {
			return math.Inf(1)
		}
		dt = c.remC / c.rateC
	}
	if c.remM > 0 {
		if c.rateM <= 0 {
			return math.Inf(1)
		}
		if m := c.remM / c.rateM; m > dt {
			dt = m
		}
	}
	t := g.now + dt
	if t < c.minEnd {
		t = c.minEnd
	}
	return t
}

// advance moves the clock to t, progresses all cohorts, retires finished
// ones, frees their resources and completes kernels whose last cohort
// retired.
func (g *engine) advance(t float64) {
	dt := t - g.now
	if dt < 0 {
		dt = 0
	}
	resident := 0
	for s := range g.smThreads {
		resident += g.smThreads[s]
	}
	g.threadNSIntegral += float64(resident) * dt

	for _, c := range g.cohorts {
		if c.remC > 0 {
			c.remC -= c.rateC * dt
			// Clamp both on an absolute epsilon and on a rate-relative one
			// (< 1e-3 ns of work left): floating-point cancellation can
			// leave residuals large in work units yet far below the clock
			// resolution, which would otherwise stall the event loop.
			if c.remC < epsNS || c.remC <= c.rateC*1e-3 {
				c.remC = 0
			}
		}
		if c.remM > 0 {
			c.remM -= c.rateM * dt
			if c.remM < epsNS || c.remM <= c.rateM*1e-3 {
				c.remM = 0
			}
		}
	}
	g.now = t

	kept := g.cohorts[:0]
	for _, c := range g.cohorts {
		if c.remC <= 0 && c.remM <= 0 && g.now+epsNS >= c.minEnd {
			g.retire(c)
		} else {
			kept = append(kept, c)
		}
	}
	g.cohorts = kept
}

func (g *engine) retire(c *cohort) {
	e := c.exec
	for s, b := range c.perSM {
		if b == 0 {
			continue
		}
		g.smThreads[s] -= int(b) * e.threads
		g.smBlocks[s] -= int(b)
		g.smSmem[s] -= int(b) * e.smem
	}
	g.flopsRetired += float64(c.blocks) * e.flopsPerBlock
	g.bytesRetired += float64(c.blocks) * e.bytesPerBlock
	e.activeCohorts--
	if e.activeCohorts == 0 && e.blocksLeft == 0 {
		g.completeKernel(e)
	}
}

func (g *engine) completeKernel(e *kernelExec) {
	e.done = true
	e.end = g.now
	if !e.started {
		e.started = true
		e.start = g.now
	}
	if e.hasSlot {
		e.hasSlot = false
		g.runningSlots--
	}
	if g.onComplete != nil {
		g.onComplete(e)
	}
}
