package simgpu

import (
	"math"
	"testing"
	"time"
)

// testSpec is a small, round-numbered device for exact timing assertions:
// 4 SMs × 64 cores at 1 GHz → 128 FLOP/ns per SM, 512 FLOP/ns device-wide;
// 100 GB/s → 100 B/ns; saturation threads = 0.25×4×1024 = 1024.
var testSpec = DeviceSpec{
	Name: "TestGPU", Arch: "Pascal",
	SMCount: 4, CoresPerSM: 64, ClockGHz: 1.0,
	MemGB: 4, MemBandwidthGBps: 100, MemType: "TEST",
	SharedMemPerSMKB:       48,
	MaxThreadsPerSM:        1024,
	MaxBlocksPerSM:         8,
	MaxThreadsPerBlock:     512,
	RegistersPerSM:         65536,
	WarpSize:               32,
	LaunchOverhead:         time.Microsecond,
	KernelLatencyFloor:     0,
	StreamCreateOverhead:   2 * time.Microsecond,
	SyncOverhead:           0,
	MemSaturationOccupancy: 0.25,
}

func computeKernel(name string, blocks, threads int, flops float64) *Kernel {
	return &Kernel{
		Name:   name,
		Config: LaunchConfig{Grid: D1(blocks), Block: D1(threads)},
		Cost:   Cost{FLOPs: flops},
	}
}

func memKernel(name string, blocks, threads int, bytes float64) *Kernel {
	return &Kernel{
		Name:   name,
		Config: LaunchConfig{Grid: D1(blocks), Block: D1(threads)},
		Cost:   Cost{Bytes: bytes},
	}
}

func launchOK(t *testing.T, d *Device, k *Kernel, s *Stream) {
	t.Helper()
	if err := d.Launch(k, s); err != nil {
		t.Fatalf("Launch(%s): %v", k.Name, err)
	}
}

func traceOK(t *testing.T, d *Device) []KernelRecord {
	t.Helper()
	recs, err := d.Trace()
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	return recs
}

func TestSingleComputeKernelDuration(t *testing.T) {
	d := NewDevice(testSpec)
	// 4 blocks × 256 threads: one block per SM, each saturating its SM's
	// 128 FLOP/ns → 512000 FLOPs finish in exactly 1000 ns.
	launchOK(t, d, computeKernel("k", 4, 256, 512000), nil)
	recs := traceOK(t, d)
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	if got, want := recs[0].Duration(), 1000*time.Nanosecond; got != want {
		t.Fatalf("duration = %v, want %v", got, want)
	}
	// Start equals the issue time (launch overhead on host).
	if recs[0].Start != time.Microsecond {
		t.Fatalf("start = %v, want 1µs (one launch overhead)", recs[0].Start)
	}
}

func TestSmallGridUnderutilizesSM(t *testing.T) {
	d := NewDevice(testSpec)
	// 1 block × 32 threads on a 64-core SM: rate = 128 × 32/64 = 64 FLOP/ns.
	launchOK(t, d, computeKernel("tiny", 1, 32, 64000), nil)
	recs := traceOK(t, d)
	if got, want := recs[0].Duration(), 1000*time.Nanosecond; got != want {
		t.Fatalf("duration = %v, want %v", got, want)
	}
}

func TestMemoryKernelDuration(t *testing.T) {
	d := NewDevice(testSpec)
	// 4 blocks × 256 threads = 1024 resident threads = saturation →
	// full 100 B/ns; 100000 bytes take 1000 ns.
	launchOK(t, d, memKernel("m", 4, 256, 100000), nil)
	recs := traceOK(t, d)
	if got, want := recs[0].Duration(), 1000*time.Nanosecond; got != want {
		t.Fatalf("duration = %v, want %v", got, want)
	}
}

func TestMemoryKernelBelowSaturation(t *testing.T) {
	d := NewDevice(testSpec)
	// 1 block × 256 threads = 256/1024 of saturation → 25 B/ns.
	launchOK(t, d, memKernel("m", 1, 256, 25000), nil)
	recs := traceOK(t, d)
	if got, want := recs[0].Duration(), 1000*time.Nanosecond; got != want {
		t.Fatalf("duration = %v, want %v", got, want)
	}
}

func TestSameStreamSerializes(t *testing.T) {
	d := NewDevice(testSpec)
	s := mustStream(d)
	launchOK(t, d, computeKernel("a", 4, 256, 512000), s)
	launchOK(t, d, computeKernel("b", 4, 256, 512000), s)
	recs := traceOK(t, d)
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if recs[1].Start < recs[0].End {
		t.Fatalf("stream order violated: b starts %v before a ends %v", recs[1].Start, recs[0].End)
	}
}

func TestTwoStreamsOverlapOnIdleSMs(t *testing.T) {
	d := NewDevice(testSpec)
	s1, s2 := mustStream(d), mustStream(d)
	// Each kernel needs only 2 SMs and runs 10µs — long relative to the
	// 1µs launch overhead (the paper's Eq. 7 payoff condition). Together
	// they fill the device and should overlap nearly fully.
	launchOK(t, d, computeKernel("a", 2, 256, 2560000), s1)
	launchOK(t, d, computeKernel("b", 2, 256, 2560000), s2)
	recs := traceOK(t, d)
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	overlap := minTime(recs[0].End, recs[1].End) - maxTime(recs[0].Start, recs[1].Start)
	if overlap <= 0 {
		t.Fatalf("kernels did not overlap: %v and %v", recs[0], recs[1])
	}
	// Total elapsed should be close to one kernel's solo duration (10µs)
	// plus the launch stagger, far below the serialized 20µs.
	total := maxTime(recs[0].End, recs[1].End) - minTime(recs[0].Start, recs[1].Start)
	if total > 12*time.Microsecond {
		t.Fatalf("no concurrency benefit: total %v", total)
	}
}

func TestContentionIsWorkConserving(t *testing.T) {
	d := NewDevice(testSpec)
	s1, s2 := mustStream(d), mustStream(d)
	// Both kernels want all 4 SMs; each SM is time-shared, so the pair
	// finishes in the same total time as running serially (2000 ns),
	// modulo the launch stagger.
	launchOK(t, d, computeKernel("a", 4, 256, 512000), s1)
	launchOK(t, d, computeKernel("b", 4, 256, 512000), s2)
	recs := traceOK(t, d)
	total := maxTime(recs[0].End, recs[1].End) - minTime(recs[0].Start, recs[1].Start)
	if total < 1900*time.Nanosecond || total > 2200*time.Nanosecond {
		t.Fatalf("work conservation violated: total = %v, want ≈2000ns", total)
	}
}

func TestNoContentionAblationMode(t *testing.T) {
	d := NewDevice(testSpec, WithoutContention())
	s1, s2 := mustStream(d), mustStream(d)
	launchOK(t, d, computeKernel("a", 4, 256, 512000), s1)
	launchOK(t, d, computeKernel("b", 4, 256, 512000), s2)
	recs := traceOK(t, d)
	// Without contention both proceed at full rate and "finish" in ~1000ns
	// each despite sharing SMs — physically impossible, which is the point
	// of the ablation.
	for _, r := range recs {
		if r.Duration() > 1100*time.Nanosecond {
			t.Fatalf("no-contention kernel took %v, want ≈1000ns", r.Duration())
		}
	}
}

func TestDefaultStreamBarrier(t *testing.T) {
	d := NewDevice(testSpec)
	s1, s2 := mustStream(d), mustStream(d)
	launchOK(t, d, computeKernel("a", 1, 256, 128000), s1)
	launchOK(t, d, computeKernel("dflt", 1, 256, 128000), nil) // default stream
	launchOK(t, d, computeKernel("b", 1, 256, 128000), s2)
	recs := traceOK(t, d)
	byName := map[string]KernelRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["dflt"].Start < byName["a"].End {
		t.Fatalf("default-stream kernel started %v before prior work ended %v",
			byName["dflt"].Start, byName["a"].End)
	}
	if byName["b"].Start < byName["dflt"].End {
		t.Fatalf("kernel after default-stream barrier started %v before barrier ended %v",
			byName["b"].Start, byName["dflt"].End)
	}
}

func TestConcurrencyDegreeLimit(t *testing.T) {
	spec := testSpec
	spec.Arch = "Tesla" // MaxConcurrentKernels = 1
	d := NewDevice(spec)
	s1, s2 := mustStream(d), mustStream(d)
	launchOK(t, d, computeKernel("a", 1, 256, 128000), s1)
	launchOK(t, d, computeKernel("b", 1, 256, 128000), s2)
	recs := traceOK(t, d)
	overlap := minTime(recs[0].End, recs[1].End) - maxTime(recs[0].Start, recs[1].Start)
	if overlap > 0 {
		t.Fatalf("kernels overlapped %v on a 1-queue device", overlap)
	}
}

func TestSharedMemoryLimitsResidency(t *testing.T) {
	d := NewDevice(testSpec)
	// 48 KB/block means one block per SM; 8 blocks → two waves of 4 →
	// with each block at 128000 FLOPs and full SM rate, each wave takes
	// 1000ns, total 2000ns.
	k := &Kernel{
		Name:   "smem-heavy",
		Config: LaunchConfig{Grid: D1(8), Block: D1(256), SharedMemBytes: 48 * 1024},
		Cost:   Cost{FLOPs: 8 * 128000},
	}
	launchOK(t, d, k, nil)
	recs := traceOK(t, d)
	if got, want := recs[0].Duration(), 2000*time.Nanosecond; got != want {
		t.Fatalf("duration = %v, want %v (two waves)", got, want)
	}
}

func TestBlockLimitCreatesWaves(t *testing.T) {
	d := NewDevice(testSpec)
	// 64 threads/block → per-SM limit is min(1024/64=16, MaxBlocksPerSM=8)=8.
	// 64 blocks → 2 waves over 4 SMs.
	k := computeKernel("many-blocks", 64, 64, 64*64000)
	launchOK(t, d, k, nil)
	recs := traceOK(t, d)
	// Each wave: 32 blocks over 4 SMs = 8 blocks×64 threads = 512 threads
	// per SM ≥ 64 cores → full rate. Wave work = 32×64000 = 2.048e6 FLOPs
	// over 512 FLOP/ns = 4000 ns; two waves = 8000 ns.
	if got, want := recs[0].Duration(), 8000*time.Nanosecond; got != want {
		t.Fatalf("duration = %v, want %v", got, want)
	}
}

func TestLatencyFloor(t *testing.T) {
	spec := testSpec
	spec.KernelLatencyFloor = 5 * time.Microsecond
	d := NewDevice(spec)
	launchOK(t, d, computeKernel("fast", 1, 64, 64), nil)
	recs := traceOK(t, d)
	if recs[0].Duration() < 5*time.Microsecond {
		t.Fatalf("duration %v below latency floor", recs[0].Duration())
	}
}

func TestHostClockAccrual(t *testing.T) {
	d := NewDevice(testSpec)
	s := mustStream(d) // 2µs
	for i := 0; i < 5; i++ {
		launchOK(t, d, computeKernel("k", 1, 64, 64000), s) // 1µs each
	}
	h := d.HostTime()
	if h != 7*time.Microsecond {
		t.Fatalf("host time = %v, want 7µs (2µs stream + 5×1µs launches)", h)
	}
}

func TestLaunchValidation(t *testing.T) {
	d := NewDevice(testSpec)
	cases := []*Kernel{
		{Name: "", Config: LaunchConfig{Grid: D1(1), Block: D1(1)}},
		{Name: "big-block", Config: LaunchConfig{Grid: D1(1), Block: D1(2048)}},
		{Name: "big-smem", Config: LaunchConfig{Grid: D1(1), Block: D1(64), SharedMemBytes: 1 << 20}},
		{Name: "neg-cost", Config: LaunchConfig{Grid: D1(1), Block: D1(64)}, Cost: Cost{FLOPs: -1}},
	}
	for _, k := range cases {
		if err := d.Launch(k, nil); err == nil {
			t.Errorf("Launch(%q) succeeded, want error", k.Name)
		}
	}
	// Dim3{} has Count 1 via clamping, so "no-grid" actually validates;
	// ensure clamping keeps Count positive rather than failing.
	if (Dim3{}).Count() != 1 {
		t.Errorf("Dim3{}.Count() = %d, want 1", (Dim3{}).Count())
	}
}

func TestDestroyedStreamRejectsWork(t *testing.T) {
	d := NewDevice(testSpec)
	s := mustStream(d)
	if err := d.DestroyStream(s); err != nil {
		t.Fatal(err)
	}
	if err := d.Launch(computeKernel("k", 1, 64, 64), s); err == nil {
		t.Fatal("launch on destroyed stream succeeded")
	}
	if err := d.DestroyStream(s); err == nil {
		t.Fatal("double destroy succeeded")
	}
	if err := d.DestroyStream(d.DefaultStream()); err == nil {
		t.Fatal("destroying default stream succeeded")
	}
}

func TestResetClocks(t *testing.T) {
	d := NewDevice(testSpec)
	launchOK(t, d, computeKernel("k", 4, 256, 512000), nil)
	if _, err := d.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if err := d.ResetClocks(); err != nil {
		t.Fatal(err)
	}
	if d.HostTime() != 0 {
		t.Fatalf("host time after reset = %v", d.HostTime())
	}
	recs := traceOK(t, d)
	if len(recs) != 0 {
		t.Fatalf("trace not cleared: %d records", len(recs))
	}
	// Device still usable after reset.
	launchOK(t, d, computeKernel("k2", 4, 256, 512000), nil)
	recs = traceOK(t, d)
	if len(recs) != 1 || recs[0].Name != "k2" {
		t.Fatalf("device unusable after reset: %v", recs)
	}
}

func TestEventElapsed(t *testing.T) {
	d := NewDevice(testSpec)
	s := mustStream(d)
	start := d.NewEvent()
	if err := start.Record(s); err != nil {
		t.Fatal(err)
	}
	launchOK(t, d, computeKernel("k", 4, 256, 512000), s)
	end := d.NewEvent()
	if err := end.Record(s); err != nil {
		t.Fatal(err)
	}
	el, err := Elapsed(start, end)
	if err != nil {
		t.Fatal(err)
	}
	// The start event on an empty stream resolves to t=0; the kernel is
	// issued at host = 2µs (stream creation) + 1µs (launch) and runs 1µs,
	// so elapsed = 4µs.
	if el != 4*time.Microsecond {
		t.Fatalf("elapsed = %v, want 4µs", el)
	}
}

func TestUnrecordedEventErrors(t *testing.T) {
	d := NewDevice(testSpec)
	e := d.NewEvent()
	if _, err := e.Synchronize(); err == nil {
		t.Fatal("synchronize on unrecorded event succeeded")
	}
}

func TestStatsThroughputBounded(t *testing.T) {
	d := NewDevice(testSpec)
	streams := []*Stream{mustStream(d), mustStream(d), mustStream(d)}
	for i := 0; i < 30; i++ {
		launchOK(t, d, computeKernel("k", 1+i%4, 128, float64(50000+i*1000)), streams[i%3])
	}
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	elapsedNS := float64(st.DeviceTime.Nanoseconds())
	if elapsedNS <= 0 {
		t.Fatal("no elapsed time")
	}
	peakPerNS := testSpec.PeakFlops() * 1e-9
	if st.FLOPsRetired/elapsedNS > peakPerNS*1.0001 {
		t.Fatalf("achieved %v FLOP/ns exceeds peak %v", st.FLOPsRetired/elapsedNS, peakPerNS)
	}
	maxResident := float64(testSpec.SMCount * testSpec.MaxThreadsPerSM)
	if st.ThreadNSIntegral/elapsedNS > maxResident*1.0001 {
		t.Fatalf("mean residency %v exceeds device capacity %v",
			st.ThreadNSIntegral/elapsedNS, maxResident)
	}
	if st.Launches != 30 {
		t.Fatalf("launches = %d", st.Launches)
	}
}

func TestTraceLimit(t *testing.T) {
	d := NewDevice(testSpec, WithTraceLimit(3))
	for i := 0; i < 10; i++ {
		launchOK(t, d, computeKernel("k", 1, 64, 1000), nil)
	}
	recs := traceOK(t, d)
	if len(recs) != 3 {
		t.Fatalf("trace kept %d records, want 3", len(recs))
	}
	st, _ := d.Stats()
	if st.TraceDropped != 7 {
		t.Fatalf("dropped = %d, want 7", st.TraceDropped)
	}
}

func TestSubscribeListener(t *testing.T) {
	d := NewDevice(testSpec)
	var got []string
	id := d.Subscribe(func(r KernelRecord) { got = append(got, r.Name) })
	launchOK(t, d, computeKernel("one", 1, 64, 1000), nil)
	traceOK(t, d)
	d.Unsubscribe(id)
	launchOK(t, d, computeKernel("two", 1, 64, 1000), nil)
	traceOK(t, d)
	if len(got) != 1 || got[0] != "one" {
		t.Fatalf("listener saw %v, want [one]", got)
	}
}

func TestHostClosureRunsOnceAtLaunch(t *testing.T) {
	d := NewDevice(testSpec)
	n := 0
	k := computeKernel("fn", 1, 64, 1000)
	k.Fn = func() { n++ }
	launchOK(t, d, k, nil)
	if n != 1 {
		t.Fatalf("closure ran %d times before sync, want 1 (eager)", n)
	}
	traceOK(t, d)
	if n != 1 {
		t.Fatalf("closure ran %d times after sync, want 1", n)
	}
}

func minTime(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}

func maxTime(a, b time.Duration) time.Duration {
	if a > b {
		return a
	}
	return b
}

func TestOccupancyCalculations(t *testing.T) {
	cfg := LaunchConfig{Grid: D1(100), Block: D1(256), SharedMemBytes: 16 * 1024}
	// testSpec: by threads 1024/256=4, by blocks 8, by smem 48/16=3 → 3.
	if got := cfg.MaxBlocksResidentPerSM(testSpec); got != 3 {
		t.Fatalf("MaxBlocksResidentPerSM = %d, want 3", got)
	}
	occ := cfg.TheoreticalOccupancy(testSpec)
	want := float64(3*256) / 1024
	if math.Abs(occ-want) > 1e-12 {
		t.Fatalf("occupancy = %v, want %v", occ, want)
	}
	// Oversized block cannot be resident.
	big := LaunchConfig{Grid: D1(1), Block: D1(4096)}
	if big.MaxBlocksResidentPerSM(testSpec) != 0 {
		t.Fatal("oversized block reported as resident")
	}
}

func TestArchCatalog(t *testing.T) {
	if len(Architectures) != 6 {
		t.Fatalf("architecture catalog has %d entries, want 6 (Table 1)", len(Architectures))
	}
	kepler, ok := ArchByName("Kepler")
	if !ok || kepler.MaxConcurrentKernels != 32 {
		t.Fatalf("Kepler = %+v, want 32 concurrent kernels", kepler)
	}
	if _, ok := ArchByName("NotAnArch"); ok {
		t.Fatal("unknown arch resolved")
	}
	for _, spec := range DeviceCatalog {
		if err := spec.Validate(); err != nil {
			t.Errorf("catalog device %s invalid: %v", spec.Name, err)
		}
	}
	if p100, ok := DeviceByName("P100"); !ok || p100.SMCount != 56 {
		t.Fatalf("P100 lookup failed: %+v", p100)
	}
	names := CatalogNames()
	if len(names) != 3 {
		t.Fatalf("catalog names = %v", names)
	}
}

func TestDeviceSpecDerived(t *testing.T) {
	// K40C: 15 SMs × 192 cores × 2 × 0.745 GHz = 4.2924 TFLOP/s.
	got := TeslaK40C.PeakFlops()
	want := 15.0 * 192 * 2 * 0.745e9
	if math.Abs(got-want) > 1 {
		t.Fatalf("K40C peak = %v, want %v", got, want)
	}
	if TeslaK40C.MaxConcurrentKernels() != 32 {
		t.Fatalf("K40C concurrency = %d, want 32 (Kepler)", TeslaK40C.MaxConcurrentKernels())
	}
	if TeslaP100.MaxConcurrentKernels() != 128 {
		t.Fatalf("P100 concurrency = %d, want 128 (Pascal)", TeslaP100.MaxConcurrentKernels())
	}
}

func TestTimelineRendering(t *testing.T) {
	d := NewDevice(testSpec)
	s1, s2 := mustStream(d), mustStream(d)
	launchOK(t, d, &Kernel{Name: "im2col_gpu", Config: LaunchConfig{Grid: D1(2), Block: D1(128)}, Cost: Cost{Bytes: 10000}}, s1)
	launchOK(t, d, &Kernel{Name: "sgemm_128", Config: LaunchConfig{Grid: D1(2), Block: D1(128)}, Cost: Cost{FLOPs: 100000}}, s2)
	recs := traceOK(t, d)
	tl := Timeline(recs, 60)
	for _, want := range []string{"stream", "legend", "i=im2col_gpu", "g=sgemm_128"} {
		if !containsStr(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
	if Timeline(nil, 60) == "" {
		t.Error("empty timeline should still render a placeholder")
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMachineTopology(t *testing.T) {
	m := NewMachine(TeslaK40C, TeslaP100)
	if len(m.Devices()) != 2 {
		t.Fatalf("machine has %d devices", len(m.Devices()))
	}
	if m.Device(0).Name() != "K40C" || m.Device(1).Name() != "P100" {
		t.Fatal("device order not preserved")
	}
	if m.Device(1).ID() != 1 {
		t.Fatal("device id not assigned")
	}
	launchOK(t, m.Device(0), computeKernel("k", 1, 64, 64000), nil)
	if _, err := m.SynchronizeAll(); err != nil {
		t.Fatal(err)
	}
}

func TestMemcpyTiming(t *testing.T) {
	spec := testSpec
	spec.PCIeBandwidthGBps = 10 // 10 B/ns
	spec.MemcpyLatency = 2 * time.Microsecond
	d := NewDevice(spec)
	// 100 KB at 10 B/ns = 10µs + 2µs latency = 12µs.
	if err := d.MemcpyHostToDevice(100000, nil); err != nil {
		t.Fatal(err)
	}
	recs := traceOK(t, d)
	if len(recs) != 1 || recs[0].Name != "memcpyHtoD" {
		t.Fatalf("records = %v", recs)
	}
	if got, want := recs[0].Duration(), 12*time.Microsecond; got != want {
		t.Fatalf("memcpy duration = %v, want %v", got, want)
	}
}

func TestMemcpyRespectsStreamOrderButNotQueueSlots(t *testing.T) {
	spec := testSpec
	spec.Arch = "Tesla" // 1 concurrent kernel
	d := NewDevice(spec)
	s1, s2 := mustStream(d), mustStream(d)
	// A long kernel on s1 holds the single queue slot; a memcpy on s2 must
	// still proceed (copy engines are independent), while a second kernel
	// on s1 must wait for the first.
	launchOK(t, d, computeKernel("k1", 4, 256, 5120000), s1) // 10µs
	if err := d.MemcpyHostToDevice(10000, s2); err != nil {
		t.Fatal(err)
	}
	launchOK(t, d, computeKernel("k2", 1, 64, 64000), s1)
	recs := traceOK(t, d)
	byName := map[string]KernelRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["memcpyHtoD"].Start >= byName["k1"].End {
		t.Fatalf("memcpy waited for the kernel queue: %v vs %v",
			byName["memcpyHtoD"].Start, byName["k1"].End)
	}
	if byName["k2"].Start < byName["k1"].End {
		t.Fatal("stream order violated")
	}
}

func TestMemcpyErrors(t *testing.T) {
	d := NewDevice(testSpec)
	if err := d.MemcpyHostToDevice(-1, nil); err == nil {
		t.Fatal("negative size accepted")
	}
	s := mustStream(d)
	if err := d.DestroyStream(s); err != nil {
		t.Fatal(err)
	}
	if err := d.MemcpyDeviceToHost(100, s); err == nil {
		t.Fatal("destroyed stream accepted")
	}
	if d.Spec().PCIeBandwidth() != 12e9 {
		t.Fatalf("default PCIe bandwidth = %v", d.Spec().PCIeBandwidth())
	}
}
