package simgpu

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// This file is the deterministic fault-injection layer of the simulated GPU.
// A Device built with WithInjector consults the injector at every failable
// driver entry point — stream creation, kernel launch, DMA transfer, device
// synchronization — and at every completed profiler record. The injector's
// decisions are pure functions of (seed, operation site, occurrence index),
// so an entire fault schedule replays bit-for-bit from one int64 seed: the
// property the chaos tests use to prove convergence invariance under faults.

// Op identifies one injectable operation site on the device.
type Op int

// Injectable operation sites.
const (
	// OpCreateStream is Device.CreateStream (cudaStreamCreate).
	OpCreateStream Op = iota
	// OpLaunch is Device.Launch (cudaLaunchKernel). Besides failing, a
	// launch decision may carry a Delay, which simulates a hung kernel: the
	// kernel executes but occupies its stream for at least that long.
	OpLaunch
	// OpMemcpy is Device.MemcpyHostToDevice / MemcpyDeviceToHost.
	OpMemcpy
	// OpSync is Device.Synchronize (cudaDeviceSynchronize).
	OpSync
	// OpRecord is the completion of one kernel record on its way to the
	// trace and the profiling listeners; the decision may drop or truncate
	// it (CUPTI buffer loss).
	OpRecord

	opCount
)

func (o Op) String() string {
	switch o {
	case OpCreateStream:
		return "CreateStream"
	case OpLaunch:
		return "Launch"
	case OpMemcpy:
		return "Memcpy"
	case OpSync:
		return "Synchronize"
	case OpRecord:
		return "Record"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Fault is an injector's decision for one operation. The zero value means
// "no fault".
type Fault struct {
	// Err, when non-nil, fails the operation with this error. Injected
	// errors should implement Transient() bool so runtimes can distinguish
	// retryable device hiccups from programming errors.
	Err error
	// Delay (OpLaunch only) stretches the kernel's execution by at least
	// this much virtual time — the hang simulation a watchdog must catch.
	Delay time.Duration
	// Drop (OpRecord only) loses the record entirely: it reaches neither
	// the device trace nor any profiling listener.
	Drop bool
	// Truncate (OpRecord only) zeroes the record's timestamps, modelling a
	// partially written activity buffer.
	Truncate bool
}

// Injector decides the fate of device operations. Implementations must be
// safe for concurrent use; Decide runs on the device's dispatching
// goroutines (and, for OpRecord, under the device lock during drains, so it
// must not call device methods).
type Injector interface {
	// Decide returns the fault (if any) for the next occurrence of op.
	// name carries the kernel or transfer name when one exists.
	Decide(op Op, name string) Fault
}

// FaultError is the error injected for a failed device operation. By
// default it is transient: the same operation retried may succeed, exactly
// like a sporadic CUDA_ERROR_LAUNCH_FAILED or a stream-creation failure
// under driver pressure. Permanent marks the opposite class — the
// CUDA_ERROR_DEVICE_LOST / sticky-context family where no retry can help
// and the runtime must evict the device instead of spinning on it.
type FaultError struct {
	Op   Op
	Name string
	N    int64 // 1-based occurrence index of the op at this site
	// Permanent marks a fault retries cannot clear; Transient() returns
	// !Permanent, so every bounded-backoff ladder gating on
	// core.IsTransient aborts on the first occurrence.
	Permanent bool
	// DeviceLost marks the whole-device failure: once an injector emits
	// one, every later failable operation on that device fails the same
	// way. DeviceLost implies Permanent.
	DeviceLost bool
}

// Error implements error.
func (e *FaultError) Error() string {
	kind := "injected"
	if e.DeviceLost {
		kind = "device lost:"
	} else if e.Permanent {
		kind = "permanent"
	}
	if e.Name != "" {
		return fmt.Sprintf("simgpu: %s %s fault (op %q, occurrence %d)", kind, e.Op, e.Name, e.N)
	}
	return fmt.Sprintf("simgpu: %s %s fault (occurrence %d)", kind, e.Op, e.N)
}

// Transient reports whether retrying the operation may succeed. Permanent
// faults (device loss, hardened sites) return false; runtimes must stop
// retrying and either evict the device or abort.
func (e *FaultError) Transient() bool { return !e.Permanent }

// IsDeviceLost reports whether err (or anything it wraps) is a FaultError
// marking permanent whole-device loss.
func IsDeviceLost(err error) bool {
	var fe *FaultError
	return errors.As(err, &fe) && fe.DeviceLost
}

// FaultPlan is a seeded, declarative fault schedule: per-site fault
// probabilities evaluated deterministically per occurrence. Two injectors
// built from equal plans make identical decisions at every (site,
// occurrence) pair — the schedule is a pure function of the plan, not of
// wall-clock, goroutine interleaving across sites, or map order.
type FaultPlan struct {
	// Seed drives every decision; distinct seeds give independent schedules.
	Seed int64

	// Per-site fault probabilities in [0, 1].
	CreateStream float64
	Launch       float64
	Memcpy       float64
	Sync         float64

	// Hang is the probability that a (successfully launched) kernel is
	// delayed by HangDelay of virtual time. HangDelay ≤ 0 defaults to
	// DefaultHangDelay.
	Hang      float64
	HangDelay time.Duration

	// DropRecord / TruncateRecord corrupt completed profiler records.
	DropRecord     float64
	TruncateRecord float64

	// MaxFaults, when positive, caps the total number of injected faults
	// (of any kind); after the budget is spent the device behaves
	// perfectly. This models a transient outage window and guarantees
	// bounded-retry recovery strategies eventually see a healthy device.
	// Device loss ignores the cap: a dead device does not come back.
	MaxFaults int64

	// DeviceLoss is the per-operation probability that the device is
	// permanently lost. The coin is flipped once per failable operation
	// (CreateStream/Launch/Memcpy/Sync) against the device-wide operation
	// counter; the first hit latches, and every failable operation from
	// then on — including the triggering one — fails with a DeviceLost
	// FaultError. The schedule bypasses MaxFaults.
	DeviceLoss float64
	// DeviceLossAfter, when positive, permanently loses the device at its
	// Nth failable operation (counted across CreateStream/Launch/Memcpy/
	// Sync, in dispatch order). Deterministic alternative to DeviceLoss
	// for scripting "device dies mid-run" at a known point.
	DeviceLossAfter int64
	// PermanentAfter, when positive, hardens each fault site: once a site
	// has injected this many transient error faults, its further faults
	// are permanent (Transient() == false). Models a flaky component
	// degrading into a broken one.
	PermanentAfter int64
}

// DefaultHangDelay is the virtual-time stall of an injected kernel hang —
// far beyond any honest kernel in the catalog, so watchdogs can use a
// generous threshold with no false positives.
const DefaultHangDelay = 2 * time.Second

// Injector builds the plan's deterministic injector.
func (p FaultPlan) Injector() *PlanInjector {
	if p.HangDelay <= 0 {
		p.HangDelay = DefaultHangDelay
	}
	return &PlanInjector{plan: p}
}

// PlanInjector is the FaultPlan-driven Injector. It carries one atomic
// occurrence counter per site plus counters of the faults actually injected,
// so tests can assert that a schedule really fired.
type PlanInjector struct {
	plan  FaultPlan
	seq   [opCount]atomic.Int64
	spent atomic.Int64
	ops   atomic.Int64 // failable operations dispatched (all sites but OpRecord)
	lost  atomic.Bool  // latched by the DeviceLoss / DeviceLossAfter schedule

	createStream atomic.Int64
	launches     atomic.Int64
	memcpys      atomic.Int64
	syncs        atomic.Int64
	hangs        atomic.Int64
	drops        atomic.Int64
	truncations  atomic.Int64
	lostOps      atomic.Int64
	permanents   atomic.Int64
}

// InjectorStats counts the faults a PlanInjector has injected so far.
type InjectorStats struct {
	CreateStream int64
	Launches     int64
	Memcpys      int64
	Syncs        int64
	Hangs        int64
	Drops        int64
	Truncations  int64
	// DeviceLost reports that the device-loss schedule has latched;
	// LostOps counts the operations failed by it (not part of Total —
	// the transient budget never applies to them).
	DeviceLost bool
	LostOps    int64
	// Permanents counts site faults hardened by PermanentAfter (already
	// included in the per-site counters above).
	Permanents int64
}

// Total sums all injected transient-class faults (device-loss failures are
// counted separately in LostOps).
func (s InjectorStats) Total() int64 {
	return s.CreateStream + s.Launches + s.Memcpys + s.Syncs + s.Hangs + s.Drops + s.Truncations
}

func (s InjectorStats) String() string {
	out := fmt.Sprintf("faults: create=%d launch=%d memcpy=%d sync=%d hang=%d drop=%d trunc=%d (total %d)",
		s.CreateStream, s.Launches, s.Memcpys, s.Syncs, s.Hangs, s.Drops, s.Truncations, s.Total())
	if s.Permanents > 0 {
		out += fmt.Sprintf(" permanent=%d", s.Permanents)
	}
	if s.DeviceLost {
		out += fmt.Sprintf(" DEVICE-LOST(ops=%d)", s.LostOps)
	}
	return out
}

// Stats returns a snapshot of the injected-fault counters.
func (in *PlanInjector) Stats() InjectorStats {
	return InjectorStats{
		CreateStream: in.createStream.Load(),
		Launches:     in.launches.Load(),
		Memcpys:      in.memcpys.Load(),
		Syncs:        in.syncs.Load(),
		Hangs:        in.hangs.Load(),
		Drops:        in.drops.Load(),
		Truncations:  in.truncations.Load(),
		DeviceLost:   in.lost.Load(),
		LostOps:      in.lostOps.Load(),
		Permanents:   in.permanents.Load(),
	}
}

// Lost reports whether the device-loss schedule has latched.
func (in *PlanInjector) Lost() bool { return in.lost.Load() }

// Ops returns the number of failable operations dispatched so far — the
// counter the DeviceLossAfter schedule is indexed by. A dry healthy run's
// final Ops() is how tests pick a mid-run DeviceLossAfter point.
func (in *PlanInjector) Ops() int64 { return in.ops.Load() }

// Plan returns the schedule this injector executes.
func (in *PlanInjector) Plan() FaultPlan { return in.plan }

// budget consumes one unit of the MaxFaults budget; it reports false when
// the budget is exhausted (the fault is then suppressed).
func (in *PlanInjector) budget() bool {
	if in.plan.MaxFaults <= 0 {
		return true
	}
	if in.spent.Add(1) > in.plan.MaxFaults {
		in.spent.Add(-1)
		return false
	}
	return true
}

// lostFault fails one operation on a lost device. It bypasses the
// MaxFaults budget: the device never recovers.
func (in *PlanInjector) lostFault(op Op, name string, n int64) Fault {
	in.lostOps.Add(1)
	return Fault{Err: &FaultError{Op: op, Name: name, N: n, Permanent: true, DeviceLost: true}}
}

// siteFault builds one injected error fault for a site whose injected-fault
// count (post-increment) is faults; PermanentAfter hardens the site once
// the count exceeds the budget.
func (in *PlanInjector) siteFault(op Op, name string, n, faults int64) Fault {
	perm := in.plan.PermanentAfter > 0 && faults > in.plan.PermanentAfter
	if perm {
		in.permanents.Add(1)
	}
	return Fault{Err: &FaultError{Op: op, Name: name, N: n, Permanent: perm}}
}

// Decide implements Injector.
func (in *PlanInjector) Decide(op Op, name string) Fault {
	n := in.seq[op].Add(1)
	if op != OpRecord {
		t := in.ops.Add(1)
		if in.lost.Load() {
			return in.lostFault(op, name, n)
		}
		if (in.plan.DeviceLossAfter > 0 && t >= in.plan.DeviceLossAfter) ||
			chance(in.plan.Seed, 0x8, t, in.plan.DeviceLoss) {
			in.lost.Store(true)
			return in.lostFault(op, name, n)
		}
	}
	switch op {
	case OpCreateStream:
		if chance(in.plan.Seed, 0x1, n, in.plan.CreateStream) && in.budget() {
			return in.siteFault(op, name, n, in.createStream.Add(1))
		}
	case OpLaunch:
		if chance(in.plan.Seed, 0x2, n, in.plan.Launch) && in.budget() {
			return in.siteFault(op, name, n, in.launches.Add(1))
		}
		if chance(in.plan.Seed, 0x3, n, in.plan.Hang) && in.budget() {
			in.hangs.Add(1)
			return Fault{Delay: in.plan.HangDelay}
		}
	case OpMemcpy:
		if chance(in.plan.Seed, 0x4, n, in.plan.Memcpy) && in.budget() {
			return in.siteFault(op, name, n, in.memcpys.Add(1))
		}
	case OpSync:
		if chance(in.plan.Seed, 0x5, n, in.plan.Sync) && in.budget() {
			return in.siteFault(op, name, n, in.syncs.Add(1))
		}
	case OpRecord:
		if chance(in.plan.Seed, 0x6, n, in.plan.DropRecord) && in.budget() {
			in.drops.Add(1)
			return Fault{Drop: true}
		}
		if chance(in.plan.Seed, 0x7, n, in.plan.TruncateRecord) && in.budget() {
			in.truncations.Add(1)
			return Fault{Truncate: true}
		}
	}
	return Fault{}
}

// chance is the deterministic coin: it hashes (seed, site salt, occurrence)
// with a splitmix64 finalizer and compares the top 53 bits against p. The
// decision for a given triple never changes, which is what makes a schedule
// reproducible independent of goroutine interleaving across sites.
func chance(seed int64, salt uint64, n int64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := mix64(uint64(seed) ^ mix64(salt*0x9e3779b97f4a7c15) ^ mix64(uint64(n)))
	return float64(h>>11)/float64(1<<53) < p
}

// mix64 is the splitmix64 finalizer.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
