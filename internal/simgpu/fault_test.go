package simgpu

import (
	"errors"
	"testing"
	"time"
)

// TestFaultPlanDeterministic: two injectors built from the same plan make
// identical decisions at every site and occurrence — the reproducibility
// contract the chaos tests depend on.
func TestFaultPlanDeterministic(t *testing.T) {
	plan := FaultPlan{
		Seed: 42, CreateStream: 0.3, Launch: 0.2, Memcpy: 0.25, Sync: 0.15,
		Hang: 0.1, DropRecord: 0.2, TruncateRecord: 0.2,
	}
	a, b := plan.Injector(), plan.Injector()
	ops := []Op{OpCreateStream, OpLaunch, OpMemcpy, OpSync, OpRecord}
	for i := 0; i < 2000; i++ {
		op := ops[i%len(ops)]
		fa, fb := a.Decide(op, "k"), b.Decide(op, "k")
		if (fa.Err == nil) != (fb.Err == nil) || fa.Delay != fb.Delay ||
			fa.Drop != fb.Drop || fa.Truncate != fb.Truncate {
			t.Fatalf("decision %d (%v) diverged: %+v vs %+v", i, op, fa, fb)
		}
	}
	if a.Stats() != b.Stats() {
		t.Fatalf("stats diverged: %v vs %v", a.Stats(), b.Stats())
	}
	if a.Stats().Total() == 0 {
		t.Fatal("schedule injected nothing; probabilities too low for the test to mean anything")
	}
}

// TestFaultPlanSeedsDiffer: distinct seeds give distinct schedules.
func TestFaultPlanSeedsDiffer(t *testing.T) {
	mk := func(seed int64) []bool {
		in := FaultPlan{Seed: seed, Launch: 0.5}.Injector()
		out := make([]bool, 200)
		for i := range out {
			out[i] = in.Decide(OpLaunch, "k").Err != nil
		}
		return out
	}
	a, b := mk(1), mk(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical 200-launch schedules")
	}
}

// TestFaultPlanMaxFaultsBudget: after MaxFaults injections the device
// behaves perfectly — the outage-window model bounded-retry recovery needs.
func TestFaultPlanMaxFaultsBudget(t *testing.T) {
	in := FaultPlan{Seed: 7, Sync: 1, MaxFaults: 3}.Injector()
	failed := 0
	for i := 0; i < 10; i++ {
		if in.Decide(OpSync, "").Err != nil {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("injected %d sync faults, want exactly MaxFaults=3", failed)
	}
}

// TestInjectedCreateStreamAndSync: certain-failure plans refuse stream
// creation and synchronization with transient errors, and a failed sync
// loses no queued work.
func TestInjectedCreateStreamAndSync(t *testing.T) {
	d := NewDevice(testSpec, WithInjector(FaultPlan{Seed: 1, CreateStream: 1}.Injector()))
	if _, err := d.CreateStream(); err == nil {
		t.Fatal("CreateStream succeeded under a certain-failure plan")
	} else {
		var fe *FaultError
		if !errors.As(err, &fe) || !fe.Transient() {
			t.Fatalf("injected error %v is not a transient FaultError", err)
		}
	}

	d2 := NewDevice(testSpec, WithInjector(FaultPlan{Seed: 1, Sync: 1, MaxFaults: 2}.Injector()))
	launchOK(t, d2, computeKernel("a", 2, 256, 512000), nil)
	if _, err := d2.Synchronize(); err == nil {
		t.Fatal("first Synchronize should fail")
	}
	if _, err := d2.Synchronize(); err == nil {
		t.Fatal("second Synchronize should fail")
	}
	// Budget exhausted: the drain now happens and the kernel completes.
	recs := traceOK(t, d2)
	if len(recs) != 1 || recs[0].Name != "a" {
		t.Fatalf("queued work lost across failed syncs: records %v", recs)
	}
}

// TestInjectedLaunchFailureSkipsClosure: a failed launch must not execute
// the kernel's host math — retried launches would otherwise run
// non-idempotent kernels twice and break convergence invariance.
func TestInjectedLaunchFailureSkipsClosure(t *testing.T) {
	d := NewDevice(testSpec, WithInjector(FaultPlan{Seed: 3, Launch: 1, MaxFaults: 1}.Injector()))
	runs := 0
	k := computeKernel("fn", 1, 64, 1000)
	k.Fn = func() { runs++ }
	if err := d.Launch(k, nil); err == nil {
		t.Fatal("first launch should fail")
	}
	if runs != 0 {
		t.Fatalf("closure ran %d times on a failed launch", runs)
	}
	if err := d.Launch(k, nil); err != nil {
		t.Fatalf("retry after budget: %v", err)
	}
	if runs != 1 {
		t.Fatalf("closure ran %d times after one successful launch", runs)
	}
}

// TestInjectedHangStretchesKernel: a hang-scheduled kernel occupies the
// device for at least the configured delay (what a watchdog must detect).
func TestInjectedHangStretchesKernel(t *testing.T) {
	delay := 500 * time.Millisecond
	d := NewDevice(testSpec, WithInjector(FaultPlan{Seed: 5, Hang: 1, HangDelay: delay}.Injector()))
	launchOK(t, d, computeKernel("slow", 2, 256, 512000), nil)
	recs := traceOK(t, d)
	if got := recs[0].Duration(); got < delay {
		t.Fatalf("hung kernel duration %v < injected delay %v", got, delay)
	}
}

// TestInjectedRecordDropAndTruncate: dropped records vanish from the trace
// (and are counted), truncated records survive with zeroed timestamps.
func TestInjectedRecordDropAndTruncate(t *testing.T) {
	d := NewDevice(testSpec, WithInjector(FaultPlan{Seed: 9, DropRecord: 1, MaxFaults: 1}.Injector()))
	launchOK(t, d, computeKernel("lost", 1, 64, 1000), nil)
	launchOK(t, d, computeKernel("kept", 1, 64, 1000), nil)
	recs := traceOK(t, d)
	if len(recs) != 1 || recs[0].Name != "kept" {
		t.Fatalf("want only the second record, got %v", recs)
	}
	st, err := d.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.RecordsLost != 1 {
		t.Fatalf("RecordsLost = %d, want 1", st.RecordsLost)
	}

	d2 := NewDevice(testSpec, WithInjector(FaultPlan{Seed: 9, TruncateRecord: 1}.Injector()))
	launchOK(t, d2, computeKernel("trunc", 2, 256, 512000), nil)
	recs2 := traceOK(t, d2)
	if len(recs2) != 1 {
		t.Fatalf("got %d records", len(recs2))
	}
	if recs2[0].Start != 0 || recs2[0].End != 0 {
		t.Fatalf("truncated record keeps timestamps: %+v", recs2[0])
	}
}

// TestNewDeviceChecked: invalid specs surface as constructor errors; the
// legacy constructor still panics for programming errors.
func TestNewDeviceChecked(t *testing.T) {
	bad := testSpec
	bad.SMCount = 0
	if _, err := NewDeviceChecked(bad); err == nil {
		t.Fatal("NewDeviceChecked accepted an invalid spec")
	}
	if d, err := NewDeviceChecked(testSpec, WithTraceLimit(3)); err != nil || d == nil {
		t.Fatalf("NewDeviceChecked(valid) = %v, %v", d, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewDevice did not panic on an invalid spec")
		}
	}()
	NewDevice(bad)
}

// TestDeviceLossAfterLatches: the deterministic device-loss schedule kills
// the device at exactly the configured failable-operation index, every
// later operation fails permanently, and the failures bypass MaxFaults.
func TestDeviceLossAfterLatches(t *testing.T) {
	in := FaultPlan{Seed: 11, DeviceLossAfter: 4, MaxFaults: 1}.Injector()
	ops := []Op{OpLaunch, OpMemcpy, OpSync, OpCreateStream}
	for i := 0; i < 12; i++ {
		f := in.Decide(ops[i%len(ops)], "k")
		if i < 3 {
			if f.Err != nil {
				t.Fatalf("op %d failed before the loss point: %v", i, f.Err)
			}
			continue
		}
		var fe *FaultError
		if f.Err == nil || !errors.As(f.Err, &fe) {
			t.Fatalf("op %d after loss point did not fail with a FaultError: %v", i, f.Err)
		}
		if fe.Transient() || !fe.DeviceLost || !fe.Permanent {
			t.Fatalf("op %d: device-loss fault not permanent: %+v", i, fe)
		}
		if !IsDeviceLost(f.Err) {
			t.Fatalf("IsDeviceLost(%v) = false", f.Err)
		}
	}
	if !in.Lost() {
		t.Fatal("injector did not latch Lost()")
	}
	st := in.Stats()
	if !st.DeviceLost || st.LostOps != 9 {
		t.Fatalf("stats = %+v, want DeviceLost with 9 lost ops (budget must not cap them)", st)
	}
	if in.Ops() != 12 {
		t.Fatalf("Ops() = %d, want 12", in.Ops())
	}
}

// TestDeviceLossProbabilisticDeterministic: the seeded DeviceLoss coin
// latches at the same failable-operation index for equal plans, and records
// never trip it.
func TestDeviceLossProbabilisticDeterministic(t *testing.T) {
	trip := func() int {
		in := FaultPlan{Seed: 21, DeviceLoss: 0.02}.Injector()
		for i := 0; i < 1000; i++ {
			in.Decide(OpRecord, "r") // records are not failable ops
			if in.Decide(OpLaunch, "k").Err != nil {
				if !in.Lost() {
					t.Fatal("first failure under a pure DeviceLoss plan must latch")
				}
				return i
			}
		}
		return -1
	}
	a, b := trip(), trip()
	if a < 0 {
		t.Fatal("DeviceLoss=0.02 never tripped in 1000 ops")
	}
	if a != b {
		t.Fatalf("loss point diverged between equal plans: %d vs %d", a, b)
	}
}

// TestPermanentAfterHardensSite: a site's faults stay transient up to the
// budget and become permanent past it.
func TestPermanentAfterHardensSite(t *testing.T) {
	in := FaultPlan{Seed: 31, Sync: 1, PermanentAfter: 2}.Injector()
	for i := 0; i < 5; i++ {
		f := in.Decide(OpSync, "")
		var fe *FaultError
		if f.Err == nil || !errors.As(f.Err, &fe) {
			t.Fatalf("sync %d did not fail", i)
		}
		wantPerm := i >= 2
		if fe.Permanent != wantPerm || fe.Transient() == wantPerm {
			t.Fatalf("sync %d: Permanent=%v, want %v", i, fe.Permanent, wantPerm)
		}
		if fe.DeviceLost || IsDeviceLost(f.Err) {
			t.Fatalf("hardened site fault must not claim device loss: %+v", fe)
		}
	}
	if st := in.Stats(); st.Permanents != 3 || st.Syncs != 5 {
		t.Fatalf("stats = %+v, want 3 permanents of 5 syncs", st)
	}
}

// TestDeviceLostFaultSurfacesThroughDevice: a device whose injector has a
// loss schedule refuses launches with an error IsDeviceLost recognises.
func TestDeviceLostFaultSurfacesThroughDevice(t *testing.T) {
	d := NewDevice(testSpec, WithInjector(FaultPlan{Seed: 1, DeviceLossAfter: 1}.Injector()))
	err := d.Launch(computeKernel("k", 1, 64, 1000), nil)
	if err == nil {
		t.Fatal("launch on a lost device succeeded")
	}
	if !IsDeviceLost(err) {
		t.Fatalf("IsDeviceLost(%v) = false", err)
	}
}
