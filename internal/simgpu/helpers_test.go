package simgpu

// mustStream creates a stream on a device that carries no fault injector,
// panicking on the impossible error so test call sites stay expressions.
func mustStream(d *Device) *Stream {
	s, err := d.CreateStream()
	if err != nil {
		panic(err)
	}
	return s
}
