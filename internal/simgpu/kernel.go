package simgpu

import "fmt"

// Dim3 is a CUDA grid or block dimension triple.
type Dim3 struct {
	X, Y, Z int
}

// D1 builds a one-dimensional Dim3.
func D1(x int) Dim3 { return Dim3{X: x, Y: 1, Z: 1} }

// D2 builds a two-dimensional Dim3.
func D2(x, y int) Dim3 { return Dim3{X: x, Y: y, Z: 1} }

// Count returns the total number of elements (threads or blocks).
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x <= 0 {
		x = 1
	}
	if y <= 0 {
		y = 1
	}
	if z <= 0 {
		z = 1
	}
	return x * y * z
}

func (d Dim3) String() string {
	return fmt.Sprintf("[%d,%d,%d]", d.X, d.Y, d.Z)
}

// LaunchConfig is the execution configuration of one kernel launch. This is
// exactly what the paper's resource tracker collects at runtime (grid and
// block dimensions, registers per thread, shared memory per block).
type LaunchConfig struct {
	Grid           Dim3
	Block          Dim3
	RegsPerThread  int
	SharedMemBytes int // static + dynamic shared memory per block
}

// Blocks returns the total number of thread blocks (#β_Ki in the paper).
func (c LaunchConfig) Blocks() int { return c.Grid.Count() }

// ThreadsPerBlock returns τ_Ki in the paper.
func (c LaunchConfig) ThreadsPerBlock() int { return c.Block.Count() }

// Cost is the simulator's work descriptor for one kernel launch: how much
// arithmetic and DRAM traffic the whole grid performs. Values are
// *effective* work — kernel implementations fold their achievable-efficiency
// factors in (e.g. an SGEMM at 60 % of peak reports FLOPs/0.6).
type Cost struct {
	FLOPs float64 // effective floating-point work of the whole grid
	Bytes float64 // effective DRAM traffic of the whole grid
}

// Add accumulates another cost.
func (c Cost) Add(o Cost) Cost {
	return Cost{FLOPs: c.FLOPs + o.FLOPs, Bytes: c.Bytes + o.Bytes}
}

// Kernel is one launchable unit of GPU work: a name (as the profiler will
// report it), a launch configuration, a cost descriptor, and an optional
// host closure holding the real computation. The closure runs exactly once,
// synchronously, at launch time on the dispatching goroutine; the simulator
// only decides *when* the kernel would have run on the device.
type Kernel struct {
	Name   string
	Config LaunchConfig
	Cost   Cost
	Fn     func()
	// Tag is free-form metadata (layer name, batch index) carried into the
	// kernel record for timeline analysis.
	Tag string
}

// Validate checks the launch against device limits, mirroring the checks the
// CUDA driver performs at launch time.
func (k *Kernel) Validate(spec DeviceSpec) error {
	if k.Name == "" {
		return fmt.Errorf("simgpu: kernel with empty name")
	}
	if k.Config.Blocks() <= 0 {
		return fmt.Errorf("simgpu: kernel %s: empty grid %v", k.Name, k.Config.Grid)
	}
	tpb := k.Config.ThreadsPerBlock()
	if tpb <= 0 {
		return fmt.Errorf("simgpu: kernel %s: empty block %v", k.Name, k.Config.Block)
	}
	if tpb > spec.MaxThreadsPerBlock {
		return fmt.Errorf("simgpu: kernel %s: %d threads/block exceeds device limit %d",
			k.Name, tpb, spec.MaxThreadsPerBlock)
	}
	if k.Config.SharedMemBytes < 0 {
		return fmt.Errorf("simgpu: kernel %s: negative shared memory", k.Name)
	}
	if k.Config.SharedMemBytes > spec.SharedMemPerSM() {
		return fmt.Errorf("simgpu: kernel %s: %d B shared memory exceeds per-SM capacity %d B",
			k.Name, k.Config.SharedMemBytes, spec.SharedMemPerSM())
	}
	if k.Cost.FLOPs < 0 || k.Cost.Bytes < 0 {
		return fmt.Errorf("simgpu: kernel %s: negative cost", k.Name)
	}
	return nil
}

// TheoreticalOccupancy returns the fraction of an SM's resident-thread limit
// this kernel can use on its own, considering thread, block and shared-memory
// limits — the classic CUDA occupancy calculation, used in tests and by the
// analyzer's diagnostics.
func (c LaunchConfig) TheoreticalOccupancy(spec DeviceSpec) float64 {
	perSM := c.MaxBlocksResidentPerSM(spec)
	if perSM <= 0 {
		return 0
	}
	threads := perSM * c.ThreadsPerBlock()
	if threads > spec.MaxThreadsPerSM {
		threads = spec.MaxThreadsPerSM
	}
	return float64(threads) / float64(spec.MaxThreadsPerSM)
}

// MaxBlocksResidentPerSM returns how many blocks of this configuration fit
// on one empty SM.
func (c LaunchConfig) MaxBlocksResidentPerSM(spec DeviceSpec) int {
	tpb := c.ThreadsPerBlock()
	if tpb <= 0 || tpb > spec.MaxThreadsPerSM {
		return 0
	}
	byThreads := spec.MaxThreadsPerSM / tpb
	byBlocks := spec.MaxBlocksPerSM
	n := byThreads
	if byBlocks < n {
		n = byBlocks
	}
	if c.SharedMemBytes > 0 {
		bySmem := spec.SharedMemPerSM() / c.SharedMemBytes
		if bySmem < n {
			n = bySmem
		}
	}
	return n
}
