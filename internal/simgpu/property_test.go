package simgpu

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// randomWorkload drives a device with a random soup of kernels over random
// streams (including the default stream) and returns the trace.
func randomWorkload(t *testing.T, seed int64, spec DeviceSpec) []KernelRecord {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := NewDevice(spec)
	nStreams := 1 + rng.Intn(5)
	streams := []*Stream{nil} // default stream
	for i := 0; i < nStreams; i++ {
		streams = append(streams, mustStream(d))
	}
	n := 5 + rng.Intn(40)
	for i := 0; i < n; i++ {
		k := &Kernel{
			Name: "k",
			Config: LaunchConfig{
				Grid:           D1(1 + rng.Intn(64)),
				Block:          D1(32 * (1 + rng.Intn(8))),
				SharedMemBytes: rng.Intn(3) * 4096,
			},
			Cost: Cost{
				FLOPs: float64(rng.Intn(1_000_000)),
				Bytes: float64(rng.Intn(500_000)),
			},
		}
		if err := d.Launch(k, streams[rng.Intn(len(streams))]); err != nil {
			t.Fatalf("seed %d: launch %d: %v", seed, i, err)
		}
		// Occasionally synchronize mid-stream to exercise lazy draining.
		if rng.Intn(10) == 0 {
			if _, err := d.Synchronize(); err != nil {
				t.Fatalf("seed %d: sync: %v", seed, err)
			}
		}
	}
	recs, err := d.Trace()
	if err != nil {
		t.Fatalf("seed %d: trace: %v", seed, err)
	}
	if len(recs) != n {
		t.Fatalf("seed %d: %d records for %d launches", seed, len(recs), n)
	}
	return recs
}

// TestQuickEngineInvariants checks structural invariants on random
// workloads: timestamps are sane, per-stream execution is ordered, the
// default stream is a two-sided barrier, and achieved throughput never
// exceeds the device peak.
func TestQuickEngineInvariants(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(2))}
	f := func(seed int64) bool {
		recs := randomWorkload(t, seed, testSpec)

		bySeq := append([]KernelRecord(nil), recs...)
		// Trace is completion-ordered; rebuild submission order by Seq.
		for i := range bySeq {
			for j := i + 1; j < len(bySeq); j++ {
				if bySeq[j].Seq < bySeq[i].Seq {
					bySeq[i], bySeq[j] = bySeq[j], bySeq[i]
				}
			}
		}

		var lastPerStream = map[int]KernelRecord{}
		var lastDefault *KernelRecord
		totalFlops := 0.0
		var maxEnd time.Duration
		for i := range bySeq {
			r := bySeq[i]
			if r.End < r.Start || r.Start < r.Queued {
				t.Logf("seed %d: bad timestamps %+v", seed, r)
				return false
			}
			if prev, ok := lastPerStream[r.StreamID]; ok && r.Start < prev.End {
				t.Logf("seed %d: stream %d order violated: %v starts before %v ends",
					seed, r.StreamID, r.Seq, prev.Seq)
				return false
			}
			if r.StreamID == 0 {
				// Barrier: must start after every earlier kernel ends.
				for j := 0; j < i; j++ {
					if bySeq[j].End > r.Start {
						t.Logf("seed %d: default kernel %d started before kernel %d ended",
							seed, r.Seq, bySeq[j].Seq)
						return false
					}
				}
				lastDefault = &bySeq[i]
			} else if lastDefault != nil && r.Start < lastDefault.End {
				t.Logf("seed %d: kernel %d overtook default barrier %d", seed, r.Seq, lastDefault.Seq)
				return false
			}
			lastPerStream[r.StreamID] = r
			totalFlops += r.FLOPs
			if r.End > maxEnd {
				maxEnd = r.End
			}
		}
		if maxEnd > 0 {
			peakPerNS := testSpec.PeakFlops() * 1e-9
			if totalFlops/float64(maxEnd.Nanoseconds()) > peakPerNS*1.001 {
				t.Logf("seed %d: throughput above peak", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEngineDeterminism: the same seed must reproduce an identical
// trace, timestamps included.
func TestQuickEngineDeterminism(t *testing.T) {
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64) bool {
		a := randomWorkload(t, seed, testSpec)
		b := randomWorkload(t, seed, testSpec)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				t.Logf("seed %d: record %d differs:\n%v\n%v", seed, i, a[i], b[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOccupancyNeverExceeded runs random workloads on catalog devices
// and checks the residency integral never exceeds device capacity.
func TestQuickOccupancyNeverExceeded(t *testing.T) {
	specs := []DeviceSpec{TeslaK40C, TeslaP100, TitanXP}
	cfg := &quick.Config{MaxCount: 15, Rand: rand.New(rand.NewSource(4))}
	i := 0
	f := func(seed int64) bool {
		spec := specs[i%len(specs)]
		i++
		rng := rand.New(rand.NewSource(seed))
		d := NewDevice(spec)
		streams := []*Stream{mustStream(d), mustStream(d), mustStream(d)}
		for j := 0; j < 25; j++ {
			k := &Kernel{
				Name: "k",
				Config: LaunchConfig{
					Grid:  D1(1 + rng.Intn(200)),
					Block: D1(64 * (1 + rng.Intn(8))),
				},
				Cost: Cost{FLOPs: float64(1000 + rng.Intn(5_000_000))},
			}
			if err := d.Launch(k, streams[j%3]); err != nil {
				return false
			}
		}
		st, err := d.Stats()
		if err != nil {
			return false
		}
		elapsed := float64(st.DeviceTime.Nanoseconds())
		if elapsed == 0 {
			return false
		}
		capacity := float64(spec.SMCount * spec.MaxThreadsPerSM)
		return st.ThreadNSIntegral/elapsed <= capacity*1.0001
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLongUnsyncedRunStaysFast guards against the quadratic dependency
// explosion the original default-stream barrier had: thousands of launches
// without an intervening sync must complete quickly.
func TestLongUnsyncedRunStaysFast(t *testing.T) {
	d := NewDevice(testSpec, WithTraceLimit(1))
	start := time.Now()
	for i := 0; i < 20000; i++ {
		if err := d.Launch(computeKernel("k", 2, 128, 50000), nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 10*time.Second {
		t.Fatalf("20k unsynced launches took %v", wall)
	}
}

// TestFractionalCostsDoNotStallEngine is the regression test for a
// floating-point event-loop stall: work residuals below the clock
// resolution but above the absolute epsilon used to stall drain() forever.
// Fractional costs at realistic magnitudes reproduce it.
func TestFractionalCostsDoNotStallEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	d := NewDevice(TeslaP100, WithTraceLimit(1))
	streams := []*Stream{nil, mustStream(d), mustStream(d), mustStream(d)}
	start := time.Now()
	for i := 0; i < 3000; i++ {
		k := &Kernel{
			Name: "k",
			Config: LaunchConfig{
				Grid:  D1(1 + rng.Intn(80)),
				Block: D1(32 + 32*rng.Intn(10)),
			},
			Cost: Cost{
				FLOPs: rng.Float64() * 3e7,
				Bytes: rng.Float64() * 4e6,
			},
		}
		if err := d.Launch(k, streams[i%len(streams)]); err != nil {
			t.Fatal(err)
		}
		if i%100 == 99 {
			if _, err := d.Synchronize(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := d.Synchronize(); err != nil {
		t.Fatal(err)
	}
	if wall := time.Since(start); wall > 20*time.Second {
		t.Fatalf("engine took %v for 3000 fractional-cost kernels", wall)
	}
}
