package simgpu

import (
	"fmt"
	"time"
)

// Stream is a CUDA-like stream: an in-order command queue. Work on different
// non-default streams may overlap on the device; the default stream has
// legacy barrier semantics (a kernel on it waits for all prior work on every
// stream and blocks all later work).
type Stream struct {
	id        int
	dev       *Device
	isDefault bool
	destroyed bool
	tail      *kernelExec // last kernel launched into this stream
}

// ID returns the stream's device-unique identifier; the default stream is 0.
func (s *Stream) ID() int { return s.id }

// IsDefault reports whether this is the device's default stream.
func (s *Stream) IsDefault() bool { return s.isDefault }

// Device returns the owning device.
func (s *Stream) Device() *Device { return s.dev }

// Synchronize blocks (in virtual time) until all work queued on this stream
// has completed. With a lazy event engine every synchronization drains the
// whole device, which is conservative but preserves all ordering guarantees.
func (s *Stream) Synchronize() (time.Duration, error) {
	return s.dev.Synchronize()
}

func (s *Stream) String() string {
	if s.isDefault {
		return "stream<default>"
	}
	return fmt.Sprintf("stream<%d>", s.id)
}

// Event is a CUDA-like event: a marker recorded into a stream whose
// timestamp is the completion time of all work that preceded it there.
type Event struct {
	dev      *Device
	recorded bool
	after    *kernelExec // nil means "beginning of time" on an empty stream
	at       float64     // resolved timestamp, valid once resolved
	resolved bool
}

// NewEvent creates an unrecorded event on the device.
func (d *Device) NewEvent() *Event { return &Event{dev: d} }

// Record marks the event after the current tail of the stream.
func (e *Event) Record(s *Stream) error {
	if s.dev != e.dev {
		return fmt.Errorf("simgpu: event recorded on stream of a different device")
	}
	s.dev.mu.Lock()
	defer s.dev.mu.Unlock()
	if s.destroyed {
		return fmt.Errorf("simgpu: record on destroyed %v", s)
	}
	e.recorded = true
	e.resolved = false
	e.after = s.tail
	return nil
}

// Synchronize resolves the event's timestamp, draining the device.
func (e *Event) Synchronize() (time.Duration, error) {
	if !e.recorded {
		return 0, fmt.Errorf("simgpu: synchronize on unrecorded event")
	}
	if _, err := e.dev.Synchronize(); err != nil {
		return 0, err
	}
	e.dev.mu.Lock()
	defer e.dev.mu.Unlock()
	if e.after == nil {
		e.at = 0
	} else {
		e.at = e.after.end
	}
	e.resolved = true
	return time.Duration(e.at), nil
}

// Elapsed returns the virtual time between two resolved events, like
// cudaEventElapsedTime.
func Elapsed(start, end *Event) (time.Duration, error) {
	st, err := start.Synchronize()
	if err != nil {
		return 0, err
	}
	en, err := end.Synchronize()
	if err != nil {
		return 0, err
	}
	return en - st, nil
}
