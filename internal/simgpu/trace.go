package simgpu

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// KernelRecord is the per-kernel activity record the simulator emits on
// completion. It carries exactly the fields the paper's resource tracker
// collects through CUPTI: the launch configuration (grid, block, registers
// per thread, shared memory per block) and the execution timestamps.
type KernelRecord struct {
	Name string
	Tag  string

	StreamID int
	Seq      int

	Grid           Dim3
	Block          Dim3
	RegsPerThread  int
	SharedMemBytes int

	Queued time.Duration // host time the launch call completed
	Start  time.Duration // first block cohort admitted to an SM
	End    time.Duration // last block cohort retired

	FLOPs float64
	Bytes float64
}

// Duration is the kernel's resident time on the device.
func (r KernelRecord) Duration() time.Duration { return r.End - r.Start }

func (r KernelRecord) String() string {
	return fmt.Sprintf("%-12s grid=%v block=%v regs=%d smem=%dB stream=%d [%v → %v] (%v)",
		r.Name, r.Grid, r.Block, r.RegsPerThread, r.SharedMemBytes, r.StreamID,
		r.Start, r.End, r.Duration())
}

// Timeline renders a set of kernel records as an ASCII per-stream Gantt
// chart, the textual analogue of the paper's Fig. 3 profiler timeline. Width
// is the number of character columns used for the time axis.
func Timeline(records []KernelRecord, width int) string {
	if len(records) == 0 {
		return "(empty timeline)\n"
	}
	if width <= 0 {
		width = 100
	}
	minT := records[0].Start
	maxT := records[0].End
	streams := map[int][]KernelRecord{}
	for _, r := range records {
		if r.Start < minT {
			minT = r.Start
		}
		if r.End > maxT {
			maxT = r.End
		}
		streams[r.StreamID] = append(streams[r.StreamID], r)
	}
	span := maxT - minT
	if span <= 0 {
		span = 1
	}
	ids := make([]int, 0, len(streams))
	for id := range streams {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	var b strings.Builder
	fmt.Fprintf(&b, "timeline %v .. %v (span %v)\n", minT, maxT, span)
	for _, id := range ids {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		recs := streams[id]
		sort.Slice(recs, func(i, j int) bool { return recs[i].Start < recs[j].Start })
		for _, r := range recs {
			lo := int(float64(r.Start-minT) / float64(span) * float64(width))
			hi := int(float64(r.End-minT) / float64(span) * float64(width))
			if hi <= lo {
				hi = lo + 1
			}
			if hi > width {
				hi = width
			}
			glyph := kernelGlyph(r.Name)
			for i := lo; i < hi; i++ {
				row[i] = glyph
			}
		}
		label := fmt.Sprintf("stream %2d", id)
		if id == 0 {
			label = "stream  0 (default)"
		}
		fmt.Fprintf(&b, "%-20s |%s|\n", label, row)
	}
	b.WriteString("legend: ")
	seen := map[byte]string{}
	order := []byte{}
	for _, id := range ids {
		for _, r := range streams[id] {
			g := kernelGlyph(r.Name)
			if _, ok := seen[g]; !ok {
				seen[g] = r.Name
				order = append(order, g)
			}
		}
	}
	for i, g := range order {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%c=%s", g, seen[g])
	}
	b.WriteString("\n")
	return b.String()
}

func kernelGlyph(name string) byte {
	if name == "" {
		return '#'
	}
	switch {
	case strings.Contains(name, "im2col"):
		return 'i'
	case strings.Contains(name, "gemmk"):
		return 'b'
	case strings.Contains(name, "gemm"):
		return 'g'
	case strings.Contains(name, "pool"):
		return 'p'
	case strings.Contains(name, "relu"):
		return 'r'
	default:
		c := name[0]
		if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			return c
		}
		return '#'
	}
}
