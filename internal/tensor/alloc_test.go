package tensor

import (
	"math/rand"
	"testing"
)

// TestGemmSteadyStateAllocs pins the zero-allocation contract: once the
// sync.Pool arena is warm, Gemm must not touch the heap — for any transpose
// combination, including the ones the naive kernel used to allocate a full
// transpose repack for.
func TestGemmSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed by race instrumentation")
	}
	rng := rand.New(rand.NewSource(2))
	m, n, k := 70, 520, 300 // straddles MC/NC/KC so every pack path runs
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	c := make([]float32, m*n)
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			ta, tb := ta, tb
			Gemm(ta, tb, m, n, k, 1, a, b, 0, c) // warm the arena
			allocs := testing.AllocsPerRun(10, func() {
				Gemm(ta, tb, m, n, k, 1, a, b, 0, c)
			})
			if allocs != 0 {
				t.Errorf("Gemm(transA=%v, transB=%v) allocates %.1f objects per call in steady state, want 0", ta, tb, allocs)
			}
		}
	}
}

// TestGemmISASteadyStateAllocs extends the zero-allocation gate across the
// dispatch ladder: every runnable ISA level must hit the heap zero times in
// steady state (the AVX2 8×8 path included — //go:noescape keeps its
// pointer arguments off the heap).
func TestGemmISASteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed by race instrumentation")
	}
	rng := rand.New(rand.NewSource(3))
	m, n, k := 70, 520, 300
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	c := make([]float32, m*n)
	for _, lv := range AvailableISAs() {
		forceISA(t, lv)
		Gemm(false, false, m, n, k, 1, a, b, 0, c) // warm the arena
		allocs := testing.AllocsPerRun(10, func() {
			Gemm(false, false, m, n, k, 1, a, b, 0, c)
		})
		if allocs != 0 {
			t.Errorf("Gemm at %s allocates %.1f objects per call in steady state, want 0", lv, allocs)
		}
	}
}

// TestGemmFusedSteadyStateAllocs pins the fused-epilogue paths at zero
// allocations: the epilogue hook must neither allocate nor force C (or
// itself) to escape, serial and band-parallel alike.
func TestGemmFusedSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed by race instrumentation")
	}
	rng := rand.New(rand.NewSource(4))
	m, n, k := 96, 260, 128
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	c := make([]float32, m*n)
	par := serialBands{4}
	GemmFused(false, false, m, n, k, 1, a, b, 0, c, reluEpi) // warm
	if allocs := testing.AllocsPerRun(10, func() {
		GemmFused(false, false, m, n, k, 1, a, b, 0, c, reluEpi)
	}); allocs != 0 {
		t.Errorf("GemmFused allocates %.1f objects per call in steady state, want 0", allocs)
	}
	GemmParallelFused(par, false, false, m, n, k, 1, a, b, 0, c, reluEpi) // warm
	if allocs := testing.AllocsPerRun(10, func() {
		GemmParallelFused(par, false, false, m, n, k, 1, a, b, 0, c, reluEpi)
	}); allocs != 0 {
		t.Errorf("GemmParallelFused allocates %.1f objects per call in steady state, want 0", allocs)
	}
}

// TestIm2colSteadyStateAllocs pins Im2col and Col2im at zero allocations.
func TestIm2colSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed by race instrumentation")
	}
	g := ConvGeom{Channels: 8, Height: 27, Width: 27, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	img := make([]float32, g.Channels*g.Height*g.Width)
	col := make([]float32, g.ColRows()*g.ColCols())
	if allocs := testing.AllocsPerRun(10, func() { Im2col(img, g, col) }); allocs != 0 {
		t.Errorf("Im2col allocates %.1f objects per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { Col2im(col, g, img) }); allocs != 0 {
		t.Errorf("Col2im allocates %.1f objects per call, want 0", allocs)
	}
}

// TestBufArenaSteadyStateAllocs pins the shared scratch arena: a warm
// Get/Put cycle at a stable size must not allocate.
func TestBufArenaSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is skewed by race instrumentation")
	}
	b := GetBuf(4096)
	b.Put()
	if allocs := testing.AllocsPerRun(10, func() {
		b := GetBuf(4096)
		b.Put()
	}); allocs != 0 {
		t.Errorf("Buf arena allocates %.1f objects per warm cycle, want 0", allocs)
	}
}
