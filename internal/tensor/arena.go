package tensor

import (
	"math/bits"
	"sync"
)

// Shared scratch-buffer arena. The dnn layers draw their per-pass scratch —
// im2col column buffers, backward column gradients, per-chain weight-gradient
// partials, Winograd tile buffers — from this arena instead of holding
// private allocations, so one net's layers (and many nets in a sweep) reuse
// the same slabs and peak scratch memory tracks the largest layer rather
// than the sum of all layers.
//
// Ownership rules:
//   - GetBuf(n) returns a *Buf with len(Data) == n and UNSPECIFIED contents;
//     callers must fully overwrite (or explicitly zero) before reading.
//   - The caller that Gets a Buf owns it until it calls Put; after Put the
//     Buf and its Data must not be touched. In the dnn layers this means
//     Put only after the batch barrier that retires every kernel closure
//     referencing the buffer.
//   - Bufs are safe to Get/Put from concurrent goroutines (it is a
//     sync.Pool underneath), but an individual Buf is not a shared object.
//
// Capacities are rounded up to powers of two so different request sizes
// share slabs; a warm Get/Put cycle performs zero heap allocations.

// Buf is one scratch slab leased from the arena.
type Buf struct {
	Data []float32
}

// bufPools[i] holds Bufs whose capacity is exactly 1<<i.
var bufPools [33]sync.Pool

// bufBucket returns the pool index for a request of n elements.
func bufBucket(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// GetBuf leases a slab with len(Data) == n from the arena. Contents are
// unspecified — the owner must write before reading.
func GetBuf(n int) *Buf {
	if n < 0 {
		panic("tensor: GetBuf negative size")
	}
	bkt := bufBucket(n)
	if v := bufPools[bkt].Get(); v != nil {
		b := v.(*Buf)
		b.Data = b.Data[:n]
		return b
	}
	return &Buf{Data: make([]float32, 1<<bkt)[:n]}
}

// GetZeroBuf leases a slab like GetBuf and zero-fills it.
func GetZeroBuf(n int) *Buf {
	b := GetBuf(n)
	zeroFill(b.Data)
	return b
}

// Put returns the slab to the arena. The Buf must have come from GetBuf and
// must not be used afterwards.
func (b *Buf) Put() {
	c := cap(b.Data)
	if c == 0 || c&(c-1) != 0 {
		// Not an arena slab (zero-size lease or foreign slice): drop it.
		return
	}
	b.Data = b.Data[:c]
	bufPools[bits.Len(uint(c))-1].Put(b)
}

// GetBufs leases count slabs of n elements each (the per-chain scratch
// pattern of the dnn layers).
func GetBufs(count, n int) []*Buf {
	return LeaseInto(nil, count, n)
}

// LeaseInto fills dst with count freshly leased n-element slabs, reusing
// dst's backing array when it is large enough (layers keep the slice across
// passes so a steady-state lease allocates nothing), and returns the slice.
func LeaseInto(dst []*Buf, count, n int) []*Buf {
	dst = dst[:0]
	for i := 0; i < count; i++ {
		dst = append(dst, GetBuf(n))
	}
	return dst
}

// PutBufs returns every slab in bufs to the arena and nils the entries.
func PutBufs(bufs []*Buf) {
	for i, b := range bufs {
		if b != nil {
			b.Put()
			bufs[i] = nil
		}
	}
}
