package tensor

import "fmt"

// Gemm computes C = alpha * op(A)·op(B) + beta * C for row-major packed
// matrices, mirroring the cblas_sgemm calls Caffe makes: op(A) is M×K,
// op(B) is K×N, C is M×N. transA/transB select op = transpose.
//
// The implementation is the cache-blocked, packed-panel kernel in pack.go,
// dispatched over the runtime ISA ladder (isa.go: pure-Go, SSE2 4×8, AVX2
// 8×8). Its determinism contract: every C element accumulates its k terms
// in strictly ascending order, exactly as the retained naive kernel
// (gemmNaive) does, so results are bit-identical to the historical
// implementation for all transpose combinations, all alpha/beta values,
// and every ISA level. Steady-state calls perform zero heap allocations:
// packing buffers come from a sync.Pool-backed arena.
func Gemm(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	GemmFused(transA, transB, m, n, k, alpha, a, b, beta, c, nil)
}

// GemmEpilogue is an elementwise transform fused into a GEMM: it is invoked
// exactly once for each completed row segment of C, immediately after the
// last k term of that block lands — while the segment is still cache hot —
// instead of as a separate full pass over the output. row is the C row
// index, col the absolute column of seg[0], and seg aliases
// C[row, col:col+len(seg)] for in-place update.
//
// Contract: the transform must be elementwise — seg[j]'s new value may
// depend only on seg[j], row, and col+j. Under that restriction the fused
// result is bitwise identical to running the same transform as a separate
// pass after the GEMM, by construction (each element is transformed exactly
// once, from exactly the same input value). Epilogues may write derived
// values to other storage (e.g. a fused ReLU writing the activation top)
// but must not read other C elements, and must not allocate — they run
// inside the zero-allocation kernel, possibly on pool workers.
type GemmEpilogue func(row, col int, seg []float32)

// GemmFused is Gemm with an optional fused epilogue. A nil epi is exactly
// Gemm. The epilogue runs even when the multiply itself is screened out
// (k == 0 or alpha == 0): the transform is a property of the output pass,
// not of the accumulation, so C still gets its beta pass followed by one
// epilogue application per element — identical to the unfused sequence.
func GemmFused(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32, epi GemmEpilogue) {
	checkGemmDims(transA, transB, m, n, k, a, b, c)
	if m == 0 || n == 0 {
		return
	}
	gemmScaleBeta(beta, c[:m*n])
	if k == 0 || alpha == 0 {
		applyEpilogueRows(epi, 0, m, n, c)
		return
	}
	gemmBlocked(ActiveISA(), transA, transB, 0, m, m, n, k, alpha, a, b, c, epi)
}

// applyEpilogueRows runs epi over whole rows [i0,i1) of the m×n C — the
// fallback for GEMMs whose accumulation was screened out entirely.
func applyEpilogueRows(epi GemmEpilogue, i0, i1, n int, c []float32) {
	if epi == nil || n == 0 {
		return
	}
	for i := i0; i < i1; i++ {
		epi(i, 0, c[i*n:i*n+n])
	}
}

// checkGemmDims validates operand sizes against the logical dims; the panic
// messages are part of the package's contract (tests pin them).
func checkGemmDims(transA, transB bool, m, n, k int, a, b, c []float32) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("tensor: Gemm negative dims m=%d n=%d k=%d", m, n, k))
	}
	if len(c) < m*n {
		panic(fmt.Sprintf("tensor: Gemm C too small: %d < %d", len(c), m*n))
	}
	if len(a) < m*k {
		panic(fmt.Sprintf("tensor: Gemm A too small: %d < %d", len(a), m*k))
	}
	if len(b) < k*n {
		panic(fmt.Sprintf("tensor: Gemm B too small: %d < %d", len(b), k*n))
	}
}

// gemmScaleBeta applies the beta pass over C exactly as the naive kernel
// did: beta==1 is a no-op, beta==0 zero-fills (so NaN/Inf in C do not leak
// through), anything else scales in place.
func gemmScaleBeta(beta float32, c []float32) {
	switch beta {
	case 1:
	case 0:
		for i := range c {
			c[i] = 0
		}
	default:
		for i := range c {
			c[i] *= beta
		}
	}
}

// gemmNaive is the pre-blocking reference kernel, retained verbatim: an ikj
// loop with a contiguous AXPY inner loop, repacking transposed operands into
// freshly allocated buffers. It defines the bit pattern the blocked kernel
// must reproduce and is what the property tests compare against.
func gemmNaive(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	checkGemmDims(transA, transB, m, n, k, a, b, c)
	if m == 0 || n == 0 {
		return
	}
	gemmScaleBeta(beta, c[:m*n])
	if k == 0 || alpha == 0 {
		return
	}

	// Repack transposed operands so inner loops are contiguous.
	// After packing: A is M×K row-major, B is K×N row-major.
	if transA {
		a = transpose(a, k, m) // stored K×M → M×K
	}
	if transB {
		b = transpose(b, n, k) // stored N×K → K×N
	}

	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		ai := a[i*k : i*k+k]
		for l := 0; l < k; l++ {
			av := alpha * ai[l]
			if av == 0 {
				continue
			}
			bl := b[l*n : l*n+n]
			axpy(av, bl, ci)
		}
	}
}

// axpy computes y += a*x over equal-length slices. Split out so the bounds
// check hoists and the loop vectorizes.
func axpy(a float32, x, y []float32) {
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += a * v
	}
}

// transpose returns the transpose of an r×c row-major matrix as a c×r
// row-major matrix.
func transpose(src []float32, r, c int) []float32 {
	dst := make([]float32, r*c)
	for i := 0; i < r; i++ {
		row := src[i*c : i*c+c]
		for j, v := range row {
			dst[j*r+i] = v
		}
	}
	return dst
}

// Gemv computes y = alpha * op(A)·x + beta * y, A row-major M×N.
func Gemv(trans bool, m, n int, alpha float32, a, x []float32, beta float32, y []float32) {
	ylen, xlen := m, n
	if trans {
		ylen, xlen = n, m
	}
	if len(a) < m*n {
		panic(fmt.Sprintf("tensor: Gemv A too small: %d < %d", len(a), m*n))
	}
	if len(x) < xlen || len(y) < ylen {
		panic("tensor: Gemv operand too small")
	}
	switch beta {
	case 1:
	case 0:
		for i := 0; i < ylen; i++ {
			y[i] = 0
		}
	default:
		for i := 0; i < ylen; i++ {
			y[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	if !trans {
		for i := 0; i < m; i++ {
			row := a[i*n : i*n+n]
			s := float32(0)
			for j, v := range row {
				s += v * x[j]
			}
			y[i] += alpha * s
		}
	} else {
		for i := 0; i < m; i++ {
			row := a[i*n : i*n+n]
			ax := alpha * x[i]
			if ax == 0 {
				continue
			}
			axpy(ax, row, y[:n])
		}
	}
}

// Axpy computes y += a*x.
func Axpy(a float32, x, y []float32) {
	if len(y) < len(x) {
		panic("tensor: Axpy y shorter than x")
	}
	if a == 0 || len(x) == 0 {
		return
	}
	axpy(a, x, y[:len(x)])
}

// Axpby computes y = a*x + b*y over the first len(x) elements of y. Like
// Axpy, it short-circuits the trivial coefficients: b==1 reduces to Axpy
// (including its a==0 no-op) and a==0 reduces to Scal. For finite inputs the
// fast paths are bit-identical to the general loop; like BLAS, the a==0 path
// normalizes a signed zero that the term 0*x[i] would otherwise contribute.
func Axpby(a float32, x []float32, b float32, y []float32) {
	if len(y) < len(x) {
		panic("tensor: Axpby y shorter than x")
	}
	if len(x) == 0 {
		return
	}
	if b == 1 {
		Axpy(a, x, y)
		return
	}
	if a == 0 {
		Scal(b, y[:len(x)])
		return
	}
	for i, v := range x {
		y[i] = a*v + b*y[i]
	}
}

// Scal scales x by a. a==1 is a no-op and a==0 zero-fills (bit-identical to
// the multiply loop for all finite inputs except that, like BLAS, it writes
// +0 where x held a negative value or a NaN).
func Scal(a float32, x []float32) {
	switch a {
	case 1:
	case 0:
		for i := range x {
			x[i] = 0
		}
	default:
		for i := range x {
			x[i] *= a
		}
	}
}

// Dot returns xᵀy in float64.
func Dot(x, y []float32) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i := range x {
		s += float64(x[i]) * float64(y[i])
	}
	return s
}
