package tensor

import "fmt"

// Gemm computes C = alpha * op(A)·op(B) + beta * C for row-major packed
// matrices, mirroring the cblas_sgemm calls Caffe makes: op(A) is M×K,
// op(B) is K×N, C is M×N. transA/transB select op = transpose.
//
// The kernel is an ikj loop with a contiguous AXPY inner loop, which is
// cache-friendly for row-major data and lets the compiler vectorize; for the
// transposed cases the operand is repacked once, so every hot loop runs on
// contiguous rows.
func Gemm(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	if m < 0 || n < 0 || k < 0 {
		panic(fmt.Sprintf("tensor: Gemm negative dims m=%d n=%d k=%d", m, n, k))
	}
	if len(c) < m*n {
		panic(fmt.Sprintf("tensor: Gemm C too small: %d < %d", len(c), m*n))
	}
	if len(a) < m*k {
		panic(fmt.Sprintf("tensor: Gemm A too small: %d < %d", len(a), m*k))
	}
	if len(b) < k*n {
		panic(fmt.Sprintf("tensor: Gemm B too small: %d < %d", len(b), k*n))
	}
	if m == 0 || n == 0 {
		return
	}

	// Scale C by beta first.
	switch beta {
	case 1:
	case 0:
		for i := 0; i < m*n; i++ {
			c[i] = 0
		}
	default:
		for i := 0; i < m*n; i++ {
			c[i] *= beta
		}
	}
	if k == 0 || alpha == 0 {
		return
	}

	// Repack transposed operands so inner loops are contiguous.
	// After packing: A is M×K row-major, B is K×N row-major.
	if transA {
		a = transpose(a, k, m) // stored K×M → M×K
	}
	if transB {
		b = transpose(b, n, k) // stored N×K → K×N
	}

	for i := 0; i < m; i++ {
		ci := c[i*n : i*n+n]
		ai := a[i*k : i*k+k]
		for l := 0; l < k; l++ {
			av := alpha * ai[l]
			if av == 0 {
				continue
			}
			bl := b[l*n : l*n+n]
			axpy(av, bl, ci)
		}
	}
}

// axpy computes y += a*x over equal-length slices. Split out so the bounds
// check hoists and the loop vectorizes.
func axpy(a float32, x, y []float32) {
	_ = y[len(x)-1]
	for i, v := range x {
		y[i] += a * v
	}
}

// transpose returns the transpose of an r×c row-major matrix as a c×r
// row-major matrix.
func transpose(src []float32, r, c int) []float32 {
	dst := make([]float32, r*c)
	for i := 0; i < r; i++ {
		row := src[i*c : i*c+c]
		for j, v := range row {
			dst[j*r+i] = v
		}
	}
	return dst
}

// Gemv computes y = alpha * op(A)·x + beta * y, A row-major M×N.
func Gemv(trans bool, m, n int, alpha float32, a, x []float32, beta float32, y []float32) {
	ylen, xlen := m, n
	if trans {
		ylen, xlen = n, m
	}
	if len(x) < xlen || len(y) < ylen {
		panic("tensor: Gemv operand too small")
	}
	switch beta {
	case 1:
	case 0:
		for i := 0; i < ylen; i++ {
			y[i] = 0
		}
	default:
		for i := 0; i < ylen; i++ {
			y[i] *= beta
		}
	}
	if alpha == 0 {
		return
	}
	if !trans {
		for i := 0; i < m; i++ {
			row := a[i*n : i*n+n]
			s := float32(0)
			for j, v := range row {
				s += v * x[j]
			}
			y[i] += alpha * s
		}
	} else {
		for i := 0; i < m; i++ {
			row := a[i*n : i*n+n]
			ax := alpha * x[i]
			if ax == 0 {
				continue
			}
			axpy(ax, row, y[:n])
		}
	}
}

// Axpy computes y += a*x.
func Axpy(a float32, x, y []float32) {
	if len(y) < len(x) {
		panic("tensor: Axpy y shorter than x")
	}
	if a == 0 || len(x) == 0 {
		return
	}
	axpy(a, x, y[:len(x)])
}

// Axpby computes y = a*x + b*y.
func Axpby(a float32, x []float32, b float32, y []float32) {
	if len(y) < len(x) {
		panic("tensor: Axpby y shorter than x")
	}
	for i, v := range x {
		y[i] = a*v + b*y[i]
	}
}

// Scal scales x by a.
func Scal(a float32, x []float32) {
	for i := range x {
		x[i] *= a
	}
}

// Dot returns xᵀy in float64.
func Dot(x, y []float32) float64 {
	if len(x) != len(y) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i := range x {
		s += float64(x[i]) * float64(y[i])
	}
	return s
}
