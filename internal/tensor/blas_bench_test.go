package tensor

import (
	"math/rand"
	"testing"
)

// Benchmark geometries follow the paper's Table 5 layers: the shapes below
// are the (M, N, K) of the per-image forward SGEMM C(Co×P) = W(Co×K)·col(K×P)
// with K = Ci·Fh·Fw and P = OutH·OutW.
var gemmShapes = []struct {
	name    string
	m, n, k int
}{
	{"CIFAR10_conv1_32x1024x75", 32, 1024, 75},
	{"Siamese_conv2_50x64x500", 50, 64, 500},
	{"CaffeNet_conv1_96x3025x363", 96, 3025, 363},
	{"CaffeNet_conv2_128x729x1200", 128, 729, 1200}, // the AlexNet conv2 shape of the acceptance bar
	{"GoogLeNet_3a1_64x784x192", 64, 784, 192},
}

func benchGemm(b *testing.B, m, n, k int, fn func(a, bb, c []float32)) {
	rng := rand.New(rand.NewSource(1))
	a := randSlice(rng, m*k)
	bb := randSlice(rng, k*n)
	c := make([]float32, m*n)
	b.SetBytes(int64(2) * int64(m) * int64(n) * int64(k)) // FLOPs as "bytes" so ns/op converts to GFLOP/s
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn(a, bb, c)
	}
}

func BenchmarkGemm(b *testing.B) {
	for _, s := range gemmShapes {
		s := s
		b.Run(s.name, func(b *testing.B) {
			benchGemm(b, s.m, s.n, s.k, func(a, bb, c []float32) {
				Gemm(false, false, s.m, s.n, s.k, 1, a, bb, 0, c)
			})
		})
	}
}

// BenchmarkGemmTransB is the conv-backward dW shape: dTop(Co×P)·colᵀ(P×K).
func BenchmarkGemmTransB(b *testing.B) {
	m, n, k := 128, 1200, 729
	benchGemm(b, m, n, k, func(a, bb, c []float32) {
		Gemm(false, true, m, n, k, 1, a, bb, 0, c)
	})
}

// BenchmarkGemmTransA is the conv-backward dcol shape: Wᵀ(K×Co)·dTop(Co×P).
func BenchmarkGemmTransA(b *testing.B) {
	m, n, k := 1200, 729, 128
	benchGemm(b, m, n, k, func(a, bb, c []float32) {
		Gemm(true, false, m, n, k, 1, a, bb, 0, c)
	})
}

// Table 5 conv geometries for the im2col/col2im kernels.
var colGeoms = []struct {
	name string
	g    ConvGeom
}{
	{"CIFAR10_conv1", ConvGeom{Channels: 3, Height: 32, Width: 32, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}},
	{"CaffeNet_conv1", ConvGeom{Channels: 3, Height: 227, Width: 227, KernelH: 11, KernelW: 11, StrideH: 4, StrideW: 4}},
	{"CaffeNet_conv2", ConvGeom{Channels: 48, Height: 27, Width: 27, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}},
	{"GoogLeNet_3a1", ConvGeom{Channels: 192, Height: 28, Width: 28, KernelH: 1, KernelW: 1, StrideH: 1, StrideW: 1}},
}

func BenchmarkIm2col(b *testing.B) {
	for _, tc := range colGeoms {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(2))
			img := randSlice(rng, tc.g.Channels*tc.g.Height*tc.g.Width)
			col := make([]float32, tc.g.ColRows()*tc.g.ColCols())
			b.SetBytes(int64(4 * len(col)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Im2col(img, tc.g, col)
			}
		})
	}
}

func BenchmarkCol2im(b *testing.B) {
	for _, tc := range colGeoms {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(3))
			col := randSlice(rng, tc.g.ColRows()*tc.g.ColCols())
			img := make([]float32, tc.g.Channels*tc.g.Height*tc.g.Width)
			b.SetBytes(int64(4 * len(col)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				Col2im(col, tc.g, img)
			}
		})
	}
}
