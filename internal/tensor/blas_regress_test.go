package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// TestGemvATooSmall: Gemv must reject an undersized A like Gemm does,
// instead of reading past the logical matrix (regression: the check was
// missing while x and y were validated).
func TestGemvATooSmall(t *testing.T) {
	a := make([]float32, 5) // one short of 3×2
	x := []float32{1, 1}
	y := make([]float32, 3)
	assertPanics(t, func() { Gemv(false, 3, 2, 1, a, x, 0, y) })
	x3 := []float32{1, 1, 1}
	y2 := make([]float32, 2)
	assertPanics(t, func() { Gemv(true, 3, 2, 1, a, x3, 0, y2) })
	// Exactly m*n must still be accepted.
	Gemv(false, 3, 2, 1, make([]float32, 6), x, 0, y)
}

// axpbyRef is the plain per-element definition y = a·x + b·y.
func axpbyRef(a float32, x []float32, b float32, y []float32) {
	for i, v := range x {
		y[i] = a*v + b*y[i]
	}
}

// TestAxpbyShortCircuitBitIdentity: the a==0 and b==1 fast paths must
// produce bit-for-bit the same y as the generic loop (for the finite
// nonzero data training produces; signed zeros are normalized like BLAS).
func TestAxpbyShortCircuitBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nonzero := func(n int) []float32 {
		s := make([]float32, n)
		for i := range s {
			for s[i] == 0 {
				s[i] = float32(rng.NormFloat64())
			}
		}
		return s
	}
	const n = 257
	x := nonzero(n)
	for _, coef := range []struct{ a, b float32 }{
		{0, 0.5}, {0, 1}, {1, 1}, {2.5, 1}, {-3, 1}, {1.5, -0.25},
	} {
		y0 := nonzero(n)
		got := append([]float32(nil), y0...)
		want := append([]float32(nil), y0...)
		Axpby(coef.a, x, coef.b, got)
		axpbyRef(coef.a, x, coef.b, want)
		for i := range got {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("Axpby(a=%v, b=%v) diverges at %d: %x want %x",
					coef.a, coef.b, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
			}
		}
	}
	// a==0, b==0 collapses to Scal(0, ·): every element becomes exactly +0
	// (the reference loop would leave −0 for negative operands; the fast
	// path normalizes like BLAS, which the doc comment pins down).
	z := nonzero(n)
	Axpby(0, x, 0, z)
	for i := range z {
		if math.Float32bits(z[i]) != 0 {
			t.Fatalf("Axpby(0, x, 0, y) left %x at %d, want +0", math.Float32bits(z[i]), i)
		}
	}
}

// TestScalShortCircuits: a==1 must leave every bit untouched, a==0 must
// produce exactly +0 everywhere, and the generic path must match the plain
// multiply loop bitwise.
func TestScalShortCircuits(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := randSlice(rng, 129)
	orig := append([]float32(nil), x...)

	Scal(1, x)
	for i := range x {
		if math.Float32bits(x[i]) != math.Float32bits(orig[i]) {
			t.Fatalf("Scal(1) changed element %d", i)
		}
	}

	y := append([]float32(nil), orig...)
	want := append([]float32(nil), orig...)
	Scal(0.75, y)
	for i := range want {
		want[i] *= 0.75
	}
	for i := range y {
		if math.Float32bits(y[i]) != math.Float32bits(want[i]) {
			t.Fatalf("Scal(0.75) diverges at %d", i)
		}
	}

	Scal(0, x)
	for i := range x {
		if math.Float32bits(x[i]) != 0 { // +0, sign bit clear
			t.Fatalf("Scal(0) left %x at %d, want +0", math.Float32bits(x[i]), i)
		}
	}
}
