package tensor

import (
	"math"
	"math/rand"
)

// Filler initializes tensors, mirroring Caffe's filler taxonomy. Fillers are
// deterministic given the provided RNG, which keeps whole-training runs
// reproducible (the convergence experiment depends on it).
type Filler interface {
	Fill(t *Tensor, rng *rand.Rand)
}

// ConstantFiller sets every element to Value.
type ConstantFiller struct{ Value float32 }

// Fill implements Filler.
func (f ConstantFiller) Fill(t *Tensor, _ *rand.Rand) { t.Fill(f.Value) }

// UniformFiller draws from [Min, Max).
type UniformFiller struct{ Min, Max float32 }

// Fill implements Filler.
func (f UniformFiller) Fill(t *Tensor, rng *rand.Rand) {
	span := f.Max - f.Min
	d := t.Data()
	for i := range d {
		d[i] = f.Min + span*rng.Float32()
	}
}

// GaussianFiller draws from N(Mean, Std²).
type GaussianFiller struct{ Mean, Std float32 }

// Fill implements Filler.
func (f GaussianFiller) Fill(t *Tensor, rng *rand.Rand) {
	d := t.Data()
	for i := range d {
		d[i] = f.Mean + f.Std*float32(rng.NormFloat64())
	}
}

// XavierFiller draws uniformly from ±sqrt(3/fan_in), Caffe's default "xavier"
// variance scaling for convolution and inner-product weights.
type XavierFiller struct{}

// Fill implements Filler.
func (XavierFiller) Fill(t *Tensor, rng *rand.Rand) {
	fanIn := fanInOf(t)
	if fanIn == 0 {
		fanIn = 1
	}
	scale := float32(math.Sqrt(3.0 / float64(fanIn)))
	d := t.Data()
	for i := range d {
		d[i] = (2*rng.Float32() - 1) * scale
	}
}

// MSRAFiller draws from N(0, 2/fan_in), the He initialization Caffe calls
// "msra"; appropriate ahead of ReLU nonlinearities.
type MSRAFiller struct{}

// Fill implements Filler.
func (MSRAFiller) Fill(t *Tensor, rng *rand.Rand) {
	fanIn := fanInOf(t)
	if fanIn == 0 {
		fanIn = 1
	}
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	d := t.Data()
	for i := range d {
		d[i] = std * float32(rng.NormFloat64())
	}
}

// fanInOf follows Caffe: for a weight blob shaped (out, in, kh, kw) or
// (out, in), the fan-in is the product of all dimensions but the first.
func fanInOf(t *Tensor) int {
	s := t.Shape()
	if len(s) == 0 {
		return 1
	}
	f := 1
	for _, d := range s[1:] {
		f *= d
	}
	if len(s) == 1 {
		f = s[0]
	}
	return f
}
