package tensor

// ConvGeom describes one 2-D convolution's spatial geometry, mirroring the
// layer parameters of the paper's Table 5: C_i input channels, H×W input,
// F_h×F_w filter, stride S, padding P (symmetric).
type ConvGeom struct {
	Channels         int // C_i
	Height, Width    int // H, W
	KernelH, KernelW int
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output feature-map height.
func (g ConvGeom) OutH() int {
	return (g.Height+2*g.PadH-g.KernelH)/g.StrideH + 1
}

// OutW returns the output feature-map width.
func (g ConvGeom) OutW() int {
	return (g.Width+2*g.PadW-g.KernelW)/g.StrideW + 1
}

// ColRows returns C_i·F_h·F_w, the number of rows of the column buffer.
func (g ConvGeom) ColRows() int { return g.Channels * g.KernelH * g.KernelW }

// ColCols returns OutH·OutW, the number of columns of the column buffer.
func (g ConvGeom) ColCols() int { return g.OutH() * g.OutW() }

// Im2col expands one image (C×H×W, row-major) into the column buffer used
// by GEMM-based convolution, exactly as Caffe's im2col_gpu kernel does:
// col is (C·KH·KW) × (OutH·OutW) row-major, zero-padded where the window
// leaves the image.
func Im2col(img []float32, g ConvGeom, col []float32) {
	oh, ow := g.OutH(), g.OutW()
	if len(img) < g.Channels*g.Height*g.Width {
		panic("tensor: Im2col image too small")
	}
	if len(col) < g.ColRows()*g.ColCols() {
		panic("tensor: Im2col column buffer too small")
	}
	idx := 0
	for c := 0; c < g.Channels; c++ {
		plane := img[c*g.Height*g.Width:]
		for kh := 0; kh < g.KernelH; kh++ {
			for kw := 0; kw < g.KernelW; kw++ {
				for y := 0; y < oh; y++ {
					iy := y*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= g.Height {
						// Whole output row falls outside the image: one
						// bulk zero-fill instead of ow scalar stores.
						zeroFill(col[idx : idx+ow])
						idx += ow
						continue
					}
					rowBase := iy * g.Width
					if g.StrideW == 1 {
						// Stride-1 fast path: ix = x + (kw − PadW) walks the
						// image row contiguously, so the interior is a bulk
						// copy framed by zero-filled pad margins.
						base := kw - g.PadW
						x0, x1 := interiorSpan(base, ow, g.Width)
						zeroFill(col[idx : idx+x0])
						copy(col[idx+x0:idx+x1], plane[rowBase+base+x0:rowBase+base+x1])
						zeroFill(col[idx+x1 : idx+ow])
						idx += ow
						continue
					}
					for x := 0; x < ow; x++ {
						ix := x*g.StrideW - g.PadW + kw
						if ix < 0 || ix >= g.Width {
							col[idx] = 0
						} else {
							col[idx] = plane[rowBase+ix]
						}
						idx++
					}
				}
			}
		}
	}
}

// interiorSpan returns the half-open output range [x0, x1) whose image
// column base+x lies inside [0, width); outside it the window reads padding.
// x0 ≤ x1 always holds, so the caller's slices are valid even when the whole
// row is padding.
func interiorSpan(base, ow, width int) (x0, x1 int) {
	x0 = 0
	if base < 0 {
		x0 = -base
	}
	x1 = width - base
	if x1 > ow {
		x1 = ow
	}
	if x1 < x0 {
		x1 = x0
	}
	if x0 > ow {
		x0, x1 = ow, ow
	}
	return x0, x1
}

// zeroFill sets every element of s to 0 (compiled to a memclr).
func zeroFill(s []float32) {
	for i := range s {
		s[i] = 0
	}
}

// addTo accumulates src into dst element-wise; slices have equal length.
func addTo(dst, src []float32) {
	if len(src) == 0 {
		return
	}
	_ = dst[len(src)-1]
	for i, v := range src {
		dst[i] += v
	}
}

// Col2im is the adjoint of Im2col: it accumulates the column buffer back
// into image gradients (C×H×W). The destination must be zeroed by the
// caller when accumulation from scratch is wanted.
func Col2im(col []float32, g ConvGeom, img []float32) {
	oh, ow := g.OutH(), g.OutW()
	if len(img) < g.Channels*g.Height*g.Width {
		panic("tensor: Col2im image too small")
	}
	if len(col) < g.ColRows()*g.ColCols() {
		panic("tensor: Col2im column buffer too small")
	}
	idx := 0
	for c := 0; c < g.Channels; c++ {
		plane := img[c*g.Height*g.Width : (c+1)*g.Height*g.Width]
		for kh := 0; kh < g.KernelH; kh++ {
			for kw := 0; kw < g.KernelW; kw++ {
				for y := 0; y < oh; y++ {
					iy := y*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= g.Height {
						idx += ow
						continue
					}
					rowBase := iy * g.Width
					if g.StrideW == 1 {
						// Stride-1 fast path: the interior accumulates
						// contiguously (same ascending-x order as the
						// scalar loop), pad margins contribute nothing.
						base := kw - g.PadW
						x0, x1 := interiorSpan(base, ow, g.Width)
						addTo(plane[rowBase+base+x0:rowBase+base+x1], col[idx+x0:idx+x1])
						idx += ow
						continue
					}
					for x := 0; x < ow; x++ {
						ix := x*g.StrideW - g.PadW + kw
						if ix >= 0 && ix < g.Width {
							plane[rowBase+ix] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
