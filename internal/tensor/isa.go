package tensor

import (
	"fmt"
	"os"
	"sync/atomic"
)

// ISA identifies one level of the runtime-dispatched micro-kernel ladder
// behind Gemm. Levels are ordered: a higher level strictly widens the
// register tile but never changes a single output bit — every level obeys
// the same ascending-k, per-lane-rounding, per-row α·a==0-skip contract, so
// dispatch is a pure speed decision (see DESIGN §7.5). The active level is
// chosen once at init from CPUID (and may be lowered at runtime via SetISA
// or the GLP4NN_ISA environment variable, e.g. to pin benchmarks or to
// reproduce a slower host's exact instruction stream — the bits match
// either way, only the clock differs).
type ISA int32

const (
	// ISAPureGo is the portable micro-kernel: 4-row strips of 4-wide Go
	// register tiles. The only level available off amd64 or under the
	// `purego` build tag.
	ISAPureGo ISA = iota
	// ISASSE2 is the SSE2 4×8 XMM register-tile micro-kernel — part of the
	// amd64 baseline, so always available on amd64 asm builds.
	ISASSE2
	// ISAAVX2 is the AVX2 8×8 YMM register-tile micro-kernel (VMULPS +
	// VADDPS only — deliberately no FMA: fused rounding would break the
	// scalar bit-identity contract; see DESIGN §7.5). Requires CPUID AVX2
	// plus OS XSAVE support for YMM state.
	ISAAVX2
)

// String implements fmt.Stringer with the names GLP4NN_ISA accepts.
func (l ISA) String() string {
	switch l {
	case ISAPureGo:
		return "purego"
	case ISASSE2:
		return "sse2"
	case ISAAVX2:
		return "avx2"
	}
	return fmt.Sprintf("ISA(%d)", int32(l))
}

// mr returns the level's register-blocked row count (the MR of the pack
// layout and micro-kernel tile). gemmMC must stay divisible by every value
// returned here.
func (l ISA) mr() int {
	if l == ISAAVX2 {
		return gemmMR8
	}
	return gemmMR4
}

// detectedISALevel is fixed at init by the build-specific detectISA (CPUID
// on amd64 asm builds, ISAPureGo elsewhere).
var detectedISALevel = detectISA()

// activeISALevel is the level Gemm dispatches on, read once per call.
var activeISALevel atomic.Int32

func init() {
	lv := detectedISALevel
	if s := os.Getenv("GLP4NN_ISA"); s != "" && s != "auto" {
		if want, err := ParseISA(s); err == nil && want < lv {
			// The environment can only force the ladder down; asking for a
			// level the host cannot run (or a typo) keeps auto-detection.
			lv = want
		}
	}
	activeISALevel.Store(int32(lv))
}

// ParseISA parses a level name as accepted by GLP4NN_ISA ("purego", "sse2",
// "avx2").
func ParseISA(s string) (ISA, error) {
	switch s {
	case "purego":
		return ISAPureGo, nil
	case "sse2":
		return ISASSE2, nil
	case "avx2":
		return ISAAVX2, nil
	}
	return 0, fmt.Errorf("tensor: unknown ISA level %q (want purego, sse2, avx2 or auto)", s)
}

// DetectedISA returns the highest level this host can run (the dispatch
// ceiling): ISAPureGo off amd64 or under `-tags purego`, otherwise ISASSE2
// or ISAAVX2 from CPUID.
func DetectedISA() ISA { return detectedISALevel }

// ActiveISA returns the level Gemm currently dispatches to.
func ActiveISA() ISA { return ISA(activeISALevel.Load()) }

// AvailableISAs returns every runnable level in ascending order — the arms a
// parity test or benchmark sweep can force via SetISA.
func AvailableISAs() []ISA {
	out := make([]ISA, 0, 3)
	for l := ISAPureGo; l <= detectedISALevel; l++ {
		out = append(out, l)
	}
	return out
}

// SetISA forces the dispatch level. Forcing below the detected ceiling is
// always allowed (the contract guarantees identical bits, so this is a pure
// speed/repro knob); forcing above it is an error. Concurrent Gemm calls
// each read the level once at entry, so a mid-flight change never mixes
// kernels within one call.
func SetISA(lv ISA) error {
	if lv < ISAPureGo || lv > ISAAVX2 {
		return fmt.Errorf("tensor: invalid ISA level %d", int32(lv))
	}
	if lv > detectedISALevel {
		return fmt.Errorf("tensor: ISA level %s not available on this host (detected %s)", lv, detectedISALevel)
	}
	activeISALevel.Store(int32(lv))
	return nil
}

// SetISAName is SetISA for CLI/env-style names; "auto" (or "") restores the
// detected ceiling.
func SetISAName(s string) error {
	if s == "" || s == "auto" {
		activeISALevel.Store(int32(detectedISALevel))
		return nil
	}
	lv, err := ParseISA(s)
	if err != nil {
		return err
	}
	return SetISA(lv)
}
