//go:build amd64 && !purego

package tensor

// cpuid executes CPUID with the given leaf/subleaf (implemented in
// cpuid_amd64.s).
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask (valid only when
// CPUID reports OSXSAVE).
func xgetbv0() (eax, edx uint32)

// detectISA probes the dispatch ceiling once at init. SSE2 is part of the
// amd64 baseline; AVX2 additionally requires the CPU feature bit AND the OS
// to have enabled XMM+YMM state saving (OSXSAVE + XCR0 bits 1–2) — a kernel
// that does not context-switch YMM registers would corrupt them across
// preemption, so both checks are load-bearing, not pedantry.
func detectISA() ISA {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return ISASSE2
	}
	_, _, c1, _ := cpuid(1, 0)
	const (
		osxsaveBit = 1 << 27 // CPUID.1:ECX.OSXSAVE
		avxBit     = 1 << 28 // CPUID.1:ECX.AVX
	)
	if c1&osxsaveBit == 0 || c1&avxBit == 0 {
		return ISASSE2
	}
	xlo, _ := xgetbv0()
	const ymmState = 0x6 // XCR0 bits 1 (SSE) and 2 (AVX) both OS-enabled
	if xlo&ymmState != ymmState {
		return ISASSE2
	}
	_, b7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5 // CPUID.7.0:EBX.AVX2
	if b7&avx2Bit == 0 {
		return ISASSE2
	}
	return ISAAVX2
}
