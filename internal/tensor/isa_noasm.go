//go:build !amd64 || purego

package tensor

// detectISA without assembly micro-kernels: the portable Go tiles are the
// only level, so the ladder has a single rung.
func detectISA() ISA { return ISAPureGo }
