package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// forceISA sets the dispatch level for one test and restores the previous
// level on cleanup.
func forceISA(t testing.TB, lv ISA) {
	t.Helper()
	prev := ActiveISA()
	if err := SetISA(lv); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = SetISA(prev) })
}

func TestParseISARoundtrip(t *testing.T) {
	for _, lv := range []ISA{ISAPureGo, ISASSE2, ISAAVX2} {
		got, err := ParseISA(lv.String())
		if err != nil || got != lv {
			t.Fatalf("ParseISA(%q) = %v, %v", lv.String(), got, err)
		}
	}
	if _, err := ParseISA("avx512"); err == nil {
		t.Fatal("ParseISA should reject unknown levels")
	}
	if _, err := ParseISA("auto"); err == nil {
		t.Fatal("ParseISA does not handle auto (SetISAName does)")
	}
}

func TestSetISAErrors(t *testing.T) {
	prev := ActiveISA()
	defer func() { _ = SetISA(prev) }()
	if err := SetISA(ISA(99)); err == nil {
		t.Fatal("SetISA should reject out-of-range levels")
	}
	if err := SetISA(ISA(-1)); err == nil {
		t.Fatal("SetISA should reject negative levels")
	}
	if DetectedISA() < ISAAVX2 {
		if err := SetISA(ISAAVX2); err == nil {
			t.Fatal("SetISA should reject levels above the detected ceiling")
		}
	}
	if err := SetISA(ISAPureGo); err != nil {
		t.Fatalf("forcing down must always work: %v", err)
	}
	if ActiveISA() != ISAPureGo {
		t.Fatal("SetISA(ISAPureGo) did not take effect")
	}
	if err := SetISAName("auto"); err != nil {
		t.Fatal(err)
	}
	if ActiveISA() != DetectedISA() {
		t.Fatal("SetISAName(auto) should restore the detected ceiling")
	}
}

func TestAvailableISAsAscending(t *testing.T) {
	avail := AvailableISAs()
	if len(avail) == 0 || avail[0] != ISAPureGo {
		t.Fatalf("AvailableISAs must start at purego: %v", avail)
	}
	if avail[len(avail)-1] != DetectedISA() {
		t.Fatalf("AvailableISAs must end at the detected ceiling: %v", avail)
	}
	for i := 1; i < len(avail); i++ {
		if avail[i] != avail[i-1]+1 {
			t.Fatalf("AvailableISAs not contiguous ascending: %v", avail)
		}
	}
}

// hostileInputs builds A/B/C with the corners the ladder must agree on:
// sprinkled zeros (the av==0 skip), whole zero rows of A (every term of a C
// row skipped), and NaNs in A (the unordered compare must fall through to
// the multiply, not skip).
func hostileInputs(rng *rand.Rand, m, n, k int) (a, b, c0 []float32) {
	a = randSlice(rng, m*k)
	b = randSlice(rng, k*n)
	sprinkleZeros(rng, a)
	if m > 1 {
		zr := rng.Intn(m)
		for l := 0; l < k; l++ {
			a[zr*k+l] = 0
		}
	}
	nan := float32(math.NaN())
	for i := 0; i < len(a); i += 97 {
		a[i] = nan
	}
	c0 = randSlice(rng, m*n)
	return
}

// TestGemmBitIdenticalAcrossISALevels forces every runnable level in turn
// over boundary-straddling shapes with hostile inputs and asserts every
// level reproduces the naive kernel bit for bit — the ladder's one contract.
func TestGemmBitIdenticalAcrossISALevels(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	sizes := []struct{ m, n, k int }{
		{1, 1, 1},
		{8, 8, 4},      // exact AVX2 tile
		{9, 17, 5},     // one remainder row, j tail
		{13, 9, 31},    // below one strip of 8, above one of 4
		{65, 513, 257}, // every blocking boundary, odd tails
		{72, 520, 300}, // MR8-divisible m crossing MC
	}
	for _, lv := range AvailableISAs() {
		forceISA(t, lv)
		for _, s := range sizes {
			for _, ta := range []bool{false, true} {
				for _, tb := range []bool{false, true} {
					a, b, c0 := hostileInputs(rng, s.m, s.n, s.k)
					got := append([]float32(nil), c0...)
					want := append([]float32(nil), c0...)
					Gemm(ta, tb, s.m, s.n, s.k, 1, a, b, 1, got)
					gemmNaive(ta, tb, s.m, s.n, s.k, 1, a, b, 1, want)
					if i, ok := bitsEqual(got, want); !ok {
						t.Fatalf("isa=%s ta=%v tb=%v m=%d n=%d k=%d: C[%d] = %x want %x",
							lv, ta, tb, s.m, s.n, s.k, i,
							math.Float32bits(got[i]), math.Float32bits(want[i]))
					}
				}
			}
		}
	}
}

// FuzzGemmISAParity lets the fuzzer hunt for a shape/coefficient/input
// corner where any two rungs of the ladder disagree on a single bit. The
// lowest runnable level (purego) is the reference; every higher level must
// match it exactly, NaNs and zero rows included.
func FuzzGemmISAParity(f *testing.F) {
	f.Add(int64(1), uint8(7), uint8(9), uint8(5), false, false, float32(1), float32(0))
	f.Add(int64(2), uint8(8), uint8(8), uint8(16), true, false, float32(-0.5), float32(1))
	f.Add(int64(3), uint8(65), uint8(130), uint8(255), false, true, float32(2), float32(-1))
	f.Add(int64(4), uint8(16), uint8(64), uint8(64), true, true, float32(0), float32(2))
	f.Fuzz(func(t *testing.T, seed int64, m8, n8, k8 uint8, ta, tb bool, alpha, beta float32) {
		if math.IsNaN(float64(alpha)) || math.IsNaN(float64(beta)) {
			return // poisons everything equally; useless failure messages
		}
		avail := AvailableISAs()
		if len(avail) < 2 {
			t.Skip("single-level host: nothing to compare")
		}
		m, n, k := int(m8)+1, int(n8)+1, int(k8)+1
		rng := rand.New(rand.NewSource(seed))
		a, b, c0 := hostileInputs(rng, m, n, k)

		prev := ActiveISA()
		defer func() { _ = SetISA(prev) }()

		var ref []float32
		for _, lv := range avail {
			if err := SetISA(lv); err != nil {
				t.Fatal(err)
			}
			got := append([]float32(nil), c0...)
			Gemm(ta, tb, m, n, k, alpha, a, b, beta, got)
			if ref == nil {
				ref = got
				continue
			}
			if i, ok := bitsEqual(got, ref); !ok {
				t.Fatalf("isa=%s diverges from %s: ta=%v tb=%v m=%d n=%d k=%d alpha=%v beta=%v: C[%d] = %x want %x",
					lv, avail[0], ta, tb, m, n, k, alpha, beta, i,
					math.Float32bits(got[i]), math.Float32bits(ref[i]))
			}
		}
	})
}

// reluEpi is a representative fused epilogue (package-level so the alloc
// test sees no closure construction).
var reluEpi GemmEpilogue = func(row, col int, seg []float32) {
	for j, v := range seg {
		if v < 0 {
			seg[j] = 0
		}
	}
}

// TestGemmFusedMatchesSeparatePass pins the epilogue contract at every ISA
// level: GemmFused(…, epi) must equal Gemm followed by the same transform as
// a separate full pass, bit for bit — including the k==0 and alpha==0
// screens, where the epilogue must still run.
func TestGemmFusedMatchesSeparatePass(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	type cse struct {
		m, n, k     int
		alpha, beta float32
	}
	cases := []cse{
		{9, 17, 5, 1, 0},
		{65, 513, 257, -0.5, 1},
		{72, 40, 64, 2, 2},
		{12, 30, 0, 1, 1},  // k == 0: epilogue over beta-scaled C
		{12, 30, 16, 0, 0}, // alpha == 0: same screen
	}
	bias := randSlice(rng, 1024)
	biasEpi := func(row, col int, seg []float32) {
		for j := range seg {
			seg[j] += bias[(col+j)%len(bias)]
		}
	}
	for _, lv := range AvailableISAs() {
		forceISA(t, lv)
		for _, cs := range cases {
			for _, epi := range []GemmEpilogue{reluEpi, biasEpi} {
				a := randSlice(rng, cs.m*cs.k)
				b := randSlice(rng, cs.k*cs.n)
				sprinkleZeros(rng, a)
				c0 := randSlice(rng, cs.m*cs.n)
				fused := append([]float32(nil), c0...)
				want := append([]float32(nil), c0...)
				GemmFused(false, false, cs.m, cs.n, cs.k, cs.alpha, a, b, cs.beta, fused, epi)
				Gemm(false, false, cs.m, cs.n, cs.k, cs.alpha, a, b, cs.beta, want)
				for i := 0; i < cs.m; i++ {
					epi(i, 0, want[i*cs.n:i*cs.n+cs.n])
				}
				if i, ok := bitsEqual(fused, want); !ok {
					t.Fatalf("isa=%s m=%d n=%d k=%d alpha=%v beta=%v: fused C[%d] = %x want %x",
						lv, cs.m, cs.n, cs.k, cs.alpha, cs.beta, i,
						math.Float32bits(fused[i]), math.Float32bits(want[i]))
				}
			}
		}
	}
}

// TestGemmParallelFusedMatchesSerial pins band-parallel fusion: disjoint row
// bands each apply the epilogue to their own rows, so any width matches the
// serial fused kernel bit for bit.
func TestGemmParallelFusedMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	m, n, k := 128, 257, 65
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	sprinkleZeros(rng, a)
	c0 := randSlice(rng, m*n)
	want := append([]float32(nil), c0...)
	GemmFused(false, false, m, n, k, 1, a, b, 0, want, reluEpi)
	for _, width := range []int{1, 2, 3, 4} {
		got := append([]float32(nil), c0...)
		GemmParallelFused(serialBands{width}, false, false, m, n, k, 1, a, b, 0, got, reluEpi)
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("width=%d: C[%d] differs", width, i)
		}
	}
}
