package tensor

import "sync"

// Blocked SGEMM: the GotoBLAS-style loop nest behind Gemm. The matrix is
// processed in cache-sized panels — B in KC×NC panels that stay resident in
// L2, A in MC×KC panels repacked into register-block order — with a 4-row
// register-blocked micro-kernel at the bottom. Two properties are load
// bearing and must survive any future tuning:
//
//  1. Determinism. Every C element accumulates its k terms in strictly
//     ascending order: the KC loop walks k blocks in ascending order and the
//     micro-kernel walks l within a block in ascending order, accumulating
//     straight into C. Together with the per-row `av == 0` skip (inherited
//     from the naive kernel) this makes the blocked kernel bit-identical to
//     gemmNaive for every transpose combination, every alpha/beta, and any
//     row banding — the convergence-invariance contract the dnn layers and
//     internal/models/invariance_test.go rely on.
//
//  2. Zero steady-state allocation. Packing buffers are drawn from a
//     sync.Pool-backed arena (gemmBufs); the transposed cases pack straight
//     from the strided source into panels, so the naive kernel's per-call
//     transpose allocation is gone entirely.
//
// Block sizes: KC×NC×4B = 512 KB keeps the B panel in L2; MC×KC×4B = 64 KB
// streams the A panel through L1; MR=4 rows of C (≤ NC×4B each) live in
// registers/L1 inside the micro-kernel, so each packed B row is loaded once
// per 4 rows of output instead of once per row.
const (
	gemmMC = 64  // rows of A packed per panel
	gemmKC = 256 // k extent of one panel pass
	gemmNC = 512 // columns of B packed per panel
	gemmMR = 4   // register-blocked rows per micro-kernel
)

// gemmBufs is one arena cell: the A and B packing panels for a single
// in-flight Gemm (or one row band of GemmParallel). Capacity is fixed at the
// maximum panel size, so steady-state Get/Put never reallocates.
type gemmBufs struct {
	ap []float32 // packed op(A) panel, MC×KC, alpha folded in
	bp []float32 // packed op(B) panel, KC×NC row-major
}

var gemmPool = sync.Pool{New: func() any {
	return &gemmBufs{
		ap: make([]float32, gemmMC*gemmKC),
		bp: make([]float32, gemmKC*gemmNC),
	}
}}

// gemmBlocked computes rows [i0,i1) of C += op(A)·op(B) with alpha folded
// into the packed A panel. m is the full logical M of op(A) (the lead
// dimension of a transposed A), so a row band sees exactly the same memory
// layout as the full product — the basis of GemmParallel's bitwise
// determinism at any band count. The caller has already applied beta and
// screened out the k==0 / alpha==0 / empty cases.
func gemmBlocked(transA, transB bool, i0, i1, m, n, k int, alpha float32, a, b, c []float32) {
	bufs := gemmPool.Get().(*gemmBufs)
	ap, bp := bufs.ap, bufs.bp
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		// k blocks strictly ascending: each C element in this column panel
		// accumulates its k terms in the same order the naive kernel uses.
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			packB(transB, b, bp, pc, jc, kc, nc, n, k)
			for ic := i0; ic < i1; ic += gemmMC {
				mc := min(gemmMC, i1-ic)
				packA(transA, a, ap, ic, pc, mc, kc, m, k, alpha)
				gemmMicro(ap, bp, c, ic, jc, mc, kc, nc, n)
			}
		}
	}
	bufs.ap, bufs.bp = ap, bp
	gemmPool.Put(bufs)
}

// packB copies the kc×nc panel of op(B) starting at (pc, jc) into bp as a
// contiguous row-major panel. For transB the stored layout is N×K, so the
// pack reads each source row once (contiguous) and scatters it into a panel
// column — this replaces the naive kernel's full N×K transpose allocation.
func packB(transB bool, b, bp []float32, pc, jc, kc, nc, n, k int) {
	if !transB {
		for l := 0; l < kc; l++ {
			src := b[(pc+l)*n+jc : (pc+l)*n+jc+nc]
			copy(bp[l*nc:l*nc+nc], src)
		}
		return
	}
	for j := 0; j < nc; j++ {
		src := b[(jc+j)*k+pc : (jc+j)*k+pc+kc]
		for l, v := range src {
			bp[l*nc+j] = v
		}
	}
}

// packA packs the mc×kc panel of op(A) starting at row ic, column pc, with
// alpha folded in (av = alpha·a matches the naive kernel's per-term
// multiply bit for bit). Layout: full 4-row strips interleaved by l
// ([l*4+r] within a strip), then any remainder rows appended one contiguous
// kc-length row each.
func packA(transA bool, a, ap []float32, ic, pc, mc, kc, m, k int, alpha float32) {
	at := func(i, l int) float32 {
		if transA {
			return a[l*m+i] // stored K×M
		}
		return a[i*k+l]
	}
	off := 0
	strips := mc / gemmMR
	for s := 0; s < strips; s++ {
		r := ic + s*gemmMR
		if !transA {
			a0 := a[r*k+pc : r*k+pc+kc]
			a1 := a[(r+1)*k+pc : (r+1)*k+pc+kc]
			a2 := a[(r+2)*k+pc : (r+2)*k+pc+kc]
			a3 := a[(r+3)*k+pc : (r+3)*k+pc+kc]
			dst := ap[off : off+gemmMR*kc]
			for l := 0; l < kc; l++ {
				dst[l*gemmMR+0] = alpha * a0[l]
				dst[l*gemmMR+1] = alpha * a1[l]
				dst[l*gemmMR+2] = alpha * a2[l]
				dst[l*gemmMR+3] = alpha * a3[l]
			}
		} else {
			dst := ap[off : off+gemmMR*kc]
			for l := 0; l < kc; l++ {
				row := a[(pc+l)*m+r : (pc+l)*m+r+gemmMR]
				dst[l*gemmMR+0] = alpha * row[0]
				dst[l*gemmMR+1] = alpha * row[1]
				dst[l*gemmMR+2] = alpha * row[2]
				dst[l*gemmMR+3] = alpha * row[3]
			}
		}
		off += gemmMR * kc
	}
	for r := ic + strips*gemmMR; r < ic+mc; r++ {
		for l := 0; l < kc; l++ {
			ap[off+l] = alpha * at(r, pc+l)
		}
		off += kc
	}
}

// gemmMicro runs the packed panels against the C block at (ic, jc):
// 4-row register-blocked strips through the 4×4 register-tile kernel, then
// single remainder rows through a scalar kernel. Both keep their C elements
// in registers across the whole k block (one load and one store per element
// per panel pass instead of one round trip per k term — the difference
// between the naive kernel's store-port bound and this one's FPU bound),
// and both accumulate l in ascending order with the naive kernel's
// `av == 0` skip applied per row, so every element's value is bit-identical
// to the naive kernel's.
func gemmMicro(ap, bp, c []float32, ic, jc, mc, kc, nc, n int) {
	off := 0
	strips := mc / gemmMR
	for s := 0; s < strips; s++ {
		r := ic + s*gemmMR
		micro4(ap[off:off+gemmMR*kc], bp,
			c[r*n+jc:r*n+jc+nc],
			c[(r+1)*n+jc:(r+1)*n+jc+nc],
			c[(r+2)*n+jc:(r+2)*n+jc+nc],
			c[(r+3)*n+jc:(r+3)*n+jc+nc],
			kc, nc)
		off += gemmMR * kc
	}
	for r := ic + strips*gemmMR; r < ic+mc; r++ {
		micro1(ap[off:off+kc], bp, c[r*n+jc:r*n+jc+nc], kc, nc)
		off += kc
	}
}

// micro4 computes four C rows against the packed panels: 4×8 SSE register
// tiles where assembly is available, portable 4×4 register tiles plus a
// scalar column tail otherwise. strip is the packed 4-row A strip
// ([l*4+row], alpha folded in).
func micro4(strip, bp, c0, c1, c2, c3 []float32, kc, nc int) {
	j := 0
	if hasAsmMicro && kc > 0 {
		for ; j+8 <= nc; j += 8 {
			micro4x8(&strip[0], &bp[j], &c0[j], &c1[j], &c2[j], &c3[j], kc, 4*nc)
		}
	}
	for ; j+4 <= nc; j += 4 {
		// The 16 accumulators live in registers for the whole k block.
		s00, s01, s02, s03 := c0[j], c0[j+1], c0[j+2], c0[j+3]
		s10, s11, s12, s13 := c1[j], c1[j+1], c1[j+2], c1[j+3]
		s20, s21, s22, s23 := c2[j], c2[j+1], c2[j+2], c2[j+3]
		s30, s31, s32, s33 := c3[j], c3[j+1], c3[j+2], c3[j+3]
		for l := 0; l < kc; l++ {
			bl := bp[l*nc+j : l*nc+j+4 : l*nc+j+4]
			b0, b1, b2, b3 := bl[0], bl[1], bl[2], bl[3]
			al := strip[l*gemmMR : l*gemmMR+gemmMR : l*gemmMR+gemmMR]
			if a := al[0]; a != 0 {
				s00 += a * b0
				s01 += a * b1
				s02 += a * b2
				s03 += a * b3
			}
			if a := al[1]; a != 0 {
				s10 += a * b0
				s11 += a * b1
				s12 += a * b2
				s13 += a * b3
			}
			if a := al[2]; a != 0 {
				s20 += a * b0
				s21 += a * b1
				s22 += a * b2
				s23 += a * b3
			}
			if a := al[3]; a != 0 {
				s30 += a * b0
				s31 += a * b1
				s32 += a * b2
				s33 += a * b3
			}
		}
		c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
		c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
		c2[j], c2[j+1], c2[j+2], c2[j+3] = s20, s21, s22, s23
		c3[j], c3[j+1], c3[j+2], c3[j+3] = s30, s31, s32, s33
	}
	for ; j < nc; j++ {
		s0, s1, s2, s3 := c0[j], c1[j], c2[j], c3[j]
		for l := 0; l < kc; l++ {
			b := bp[l*nc+j]
			al := strip[l*gemmMR : l*gemmMR+gemmMR : l*gemmMR+gemmMR]
			if a := al[0]; a != 0 {
				s0 += a * b
			}
			if a := al[1]; a != 0 {
				s1 += a * b
			}
			if a := al[2]; a != 0 {
				s2 += a * b
			}
			if a := al[3]; a != 0 {
				s3 += a * b
			}
		}
		c0[j], c1[j], c2[j], c3[j] = s0, s1, s2, s3
	}
}

// micro1 computes one C row against the packed panels (remainder rows of a
// panel): 1×4 register tiles with a scalar tail, same ordering contract as
// micro4.
func micro1(arow, bp, ci []float32, kc, nc int) {
	j := 0
	for ; j+4 <= nc; j += 4 {
		s0, s1, s2, s3 := ci[j], ci[j+1], ci[j+2], ci[j+3]
		for l := 0; l < kc; l++ {
			a := arow[l]
			if a == 0 {
				continue
			}
			bl := bp[l*nc+j : l*nc+j+4 : l*nc+j+4]
			s0 += a * bl[0]
			s1 += a * bl[1]
			s2 += a * bl[2]
			s3 += a * bl[3]
		}
		ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
	}
	for ; j < nc; j++ {
		s := ci[j]
		for l := 0; l < kc; l++ {
			if a := arow[l]; a != 0 {
				s += a * bp[l*nc+j]
			}
		}
		ci[j] = s
	}
}

// RowParallel is the execution resource GemmParallel shards row bands
// across. hostpool.Pool implements it; the indirection keeps the tensor
// package free of an execution-engine dependency.
type RowParallel interface {
	// Workers returns the concurrency bound.
	Workers() int
	// Run executes fn(0..tasks-1), possibly concurrently. Implementations
	// must run every task exactly once, return after all complete, and
	// report panicking tasks through the error instead of crashing worker
	// goroutines.
	Run(tasks int, fn func(task int)) error
}

// gemmMinBandRows is the smallest row band worth a parallel task: below
// this, packing overhead dominates and the serial path wins.
const gemmMinBandRows = 32

// GemmParallel is Gemm with the rows of C sharded into disjoint bands
// executed via p. Every band computes its rows with the same blocked kernel,
// the same panel geometry, and the same ascending-k accumulation the serial
// path uses, and bands touch disjoint C rows — so the result is bit-identical
// to Gemm at every band count, which is what makes the mode safe to enable
// under the convergence-invariance contract. A nil p, a single worker, or a
// small M falls back to the serial kernel.
func GemmParallel(p RowParallel, transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	bands := 0
	if p != nil {
		bands = min(p.Workers(), m/gemmMinBandRows)
	}
	if bands <= 1 {
		Gemm(transA, transB, m, n, k, alpha, a, b, beta, c)
		return
	}
	checkGemmDims(transA, transB, m, n, k, a, b, c)
	if n == 0 {
		return
	}
	quo, rem := m/bands, m%bands
	err := p.Run(bands, func(band int) {
		i0 := band*quo + min(band, rem)
		i1 := i0 + quo
		if band < rem {
			i1++
		}
		gemmScaleBeta(beta, c[i0*n:i1*n])
		if k == 0 || alpha == 0 {
			return
		}
		gemmBlocked(transA, transB, i0, i1, m, n, k, alpha, a, b, c)
	})
	if err != nil {
		// A band panic is a programming error (bad dims slipped past the
		// checks); re-panic like the serial kernel would, now with every
		// band accounted for instead of a dead worker goroutine.
		panic(err)
	}
}
