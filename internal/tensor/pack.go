package tensor

import "sync"

// Blocked SGEMM: the GotoBLAS-style loop nest behind Gemm. The matrix is
// processed in cache-sized panels — B in KC×NC panels that stay resident in
// L2, A in MC×KC panels repacked into register-block order — with a
// register-blocked micro-kernel at the bottom, selected by the runtime ISA
// ladder (isa.go): pure-Go 4×4 tiles, SSE2 4×8, or AVX2 8×8. Two properties
// are load bearing and must survive any future tuning:
//
//  1. Determinism. Every C element accumulates its k terms in strictly
//     ascending order: the KC loop walks k blocks in ascending order and the
//     micro-kernel walks l within a block in ascending order, accumulating
//     straight into C. Together with the per-row `av == 0` skip (inherited
//     from the naive kernel) this makes the blocked kernel bit-identical to
//     gemmNaive for every transpose combination, every alpha/beta, any row
//     banding, AND every ISA level — SIMD lanes always map to distinct j
//     columns, never to k, and the wider AVX2 tile only changes how many
//     *rows* share one pass over packed B, not any element's accumulation
//     order. This is the convergence-invariance contract the dnn layers and
//     internal/models/invariance_test.go rely on.
//
//  2. Zero steady-state allocation. Packing buffers are drawn from a
//     sync.Pool-backed arena (gemmBufs); the transposed cases pack straight
//     from the strided source into panels, so the naive kernel's per-call
//     transpose allocation is gone entirely. The optional fused epilogue is
//     applied in place over completed C rows and allocates nothing.
//
// Block sizes: KC×NC×4B = 512 KB keeps the B panel in L2; MC×KC×4B = 64 KB
// streams the A panel through L1; MR rows of C (≤ NC×4B each) live in
// registers/L1 inside the micro-kernel, so each packed B row is loaded once
// per MR rows of output instead of once per row. MR is per-ISA (4 for
// pure-Go/SSE2, 8 for AVX2); gemmMC is divisible by both so full panels
// split into whole strips.
const (
	gemmMC  = 64  // rows of A packed per panel
	gemmKC  = 256 // k extent of one panel pass
	gemmNC  = 512 // columns of B packed per panel
	gemmMR4 = 4   // register-blocked rows: pure-Go and SSE2 micro-kernels
	gemmMR8 = 8   // register-blocked rows: AVX2 micro-kernel
)

// gemmBufs is one arena cell: the A and B packing panels for a single
// in-flight Gemm (or one row band of GemmParallel). Capacity is fixed at the
// maximum panel size (independent of MR — the strip layout reorders the
// same mc×kc elements), so steady-state Get/Put never reallocates.
type gemmBufs struct {
	ap []float32 // packed op(A) panel, MC×KC, alpha folded in
	bp []float32 // packed op(B) panel, KC×NC row-major
}

var gemmPool = sync.Pool{New: func() any {
	return &gemmBufs{
		ap: make([]float32, gemmMC*gemmKC),
		bp: make([]float32, gemmKC*gemmNC),
	}
}}

// gemmBlocked computes rows [i0,i1) of C += op(A)·op(B) with alpha folded
// into the packed A panel, dispatching the lv micro-kernel. m is the full
// logical M of op(A) (the lead dimension of a transposed A), so a row band
// sees exactly the same memory layout as the full product — the basis of
// GemmParallel's bitwise determinism at any band count. The caller has
// already applied beta and screened out the k==0 / alpha==0 / empty cases.
//
// A non-nil epi runs once per completed C row segment, immediately after
// the final k panel finishes that block — while the rows are still cache
// hot. The epilogue must be elementwise (each output element transformed
// independently), which makes the fused result bitwise identical to running
// the same transform as a separate full pass, by construction.
func gemmBlocked(lv ISA, transA, transB bool, i0, i1, m, n, k int, alpha float32, a, b, c []float32, epi GemmEpilogue) {
	mr := lv.mr()
	bufs := gemmPool.Get().(*gemmBufs)
	ap, bp := bufs.ap, bufs.bp
	for jc := 0; jc < n; jc += gemmNC {
		nc := min(gemmNC, n-jc)
		// k blocks strictly ascending: each C element in this column panel
		// accumulates its k terms in the same order the naive kernel uses.
		for pc := 0; pc < k; pc += gemmKC {
			kc := min(gemmKC, k-pc)
			lastK := pc+kc == k
			packB(transB, b, bp, pc, jc, kc, nc, n, k)
			for ic := i0; ic < i1; ic += gemmMC {
				mc := min(gemmMC, i1-ic)
				packA(transA, a, ap, ic, pc, mc, kc, m, k, alpha, mr)
				gemmMicro(lv, mr, ap, bp, c, ic, jc, mc, kc, nc, n)
				if epi != nil && lastK {
					for i := ic; i < ic+mc; i++ {
						epi(i, jc, c[i*n+jc:i*n+jc+nc])
					}
				}
			}
		}
	}
	bufs.ap, bufs.bp = ap, bp
	gemmPool.Put(bufs)
}

// packB copies the kc×nc panel of op(B) starting at (pc, jc) into bp as a
// contiguous row-major panel. For transB the stored layout is N×K, so the
// pack reads each source row once (contiguous) and scatters it into a panel
// column — this replaces the naive kernel's full N×K transpose allocation.
func packB(transB bool, b, bp []float32, pc, jc, kc, nc, n, k int) {
	if !transB {
		for l := 0; l < kc; l++ {
			src := b[(pc+l)*n+jc : (pc+l)*n+jc+nc]
			copy(bp[l*nc:l*nc+nc], src)
		}
		return
	}
	for j := 0; j < nc; j++ {
		src := b[(jc+j)*k+pc : (jc+j)*k+pc+kc]
		for l, v := range src {
			bp[l*nc+j] = v
		}
	}
}

// packA packs the mc×kc panel of op(A) starting at row ic, column pc, with
// alpha folded in (av = alpha·a matches the naive kernel's per-term
// multiply bit for bit). Layout: full mr-row strips interleaved by l
// ([l*mr+r] within a strip), then any remainder rows appended one
// contiguous kc-length row each.
func packA(transA bool, a, ap []float32, ic, pc, mc, kc, m, k int, alpha float32, mr int) {
	off := 0
	strips := mc / mr
	for s := 0; s < strips; s++ {
		r := ic + s*mr
		dst := ap[off : off+mr*kc]
		if !transA {
			for rr := 0; rr < mr; rr++ {
				row := a[(r+rr)*k+pc : (r+rr)*k+pc+kc]
				for l, v := range row {
					dst[l*mr+rr] = alpha * v
				}
			}
		} else {
			for l := 0; l < kc; l++ {
				row := a[(pc+l)*m+r : (pc+l)*m+r+mr]
				for rr, v := range row {
					dst[l*mr+rr] = alpha * v
				}
			}
		}
		off += mr * kc
	}
	at := func(i, l int) float32 {
		if transA {
			return a[l*m+i] // stored K×M
		}
		return a[i*k+l]
	}
	for r := ic + strips*mr; r < ic+mc; r++ {
		for l := 0; l < kc; l++ {
			ap[off+l] = alpha * at(r, pc+l)
		}
		off += kc
	}
}

// gemmMicro runs the packed panels against the C block at (ic, jc):
// mr-row register-blocked strips through the level's register-tile kernel,
// then single remainder rows through a scalar kernel. Both keep their C
// elements in registers across the whole k block (one load and one store
// per element per panel pass instead of one round trip per k term — the
// difference between the naive kernel's store-port bound and this one's FPU
// bound), and both accumulate l in ascending order with the naive kernel's
// `av == 0` skip applied per row, so every element's value is bit-identical
// to the naive kernel's at every ISA level.
func gemmMicro(lv ISA, mr int, ap, bp, c []float32, ic, jc, mc, kc, nc, n int) {
	off := 0
	strips := mc / mr
	for s := 0; s < strips; s++ {
		r := ic + s*mr
		strip := ap[off : off+mr*kc]
		if mr == gemmMR8 {
			micro8(strip, bp, c, r, jc, kc, nc, n)
		} else {
			micro4(lv >= ISASSE2, strip, bp,
				c[r*n+jc:r*n+jc+nc],
				c[(r+1)*n+jc:(r+1)*n+jc+nc],
				c[(r+2)*n+jc:(r+2)*n+jc+nc],
				c[(r+3)*n+jc:(r+3)*n+jc+nc],
				kc, nc)
		}
		off += mr * kc
	}
	for r := ic + strips*mr; r < ic+mc; r++ {
		micro1(ap[off:off+kc], bp, c[r*n+jc:r*n+jc+nc], kc, nc)
		off += kc
	}
}

// micro8 computes eight C rows against the packed panels at the ISAAVX2
// level: 8×8 YMM register tiles through the assembly kernel, then a scalar
// column tail with the same per-element ordering contract. strip is the
// packed 8-row A strip ([l*8+row], alpha folded in); r/jc locate the block
// inside the n-wide C.
func micro8(strip, bp, c []float32, r, jc, kc, nc, n int) {
	j := 0
	if kc > 0 {
		for ; j+8 <= nc; j += 8 {
			micro8x8(&strip[0], &bp[j], &c[r*n+jc+j], kc, 4*nc, 4*n)
		}
	}
	for ; j < nc; j++ {
		for rr := 0; rr < gemmMR8; rr++ {
			s := c[(r+rr)*n+jc+j]
			for l := 0; l < kc; l++ {
				if a := strip[l*gemmMR8+rr]; a != 0 {
					s += a * bp[l*nc+j]
				}
			}
			c[(r+rr)*n+jc+j] = s
		}
	}
}

// micro4 computes four C rows against the packed panels: 4×8 SSE register
// tiles where useAsm (the SSE2-or-higher rungs of the ladder), portable Go
// 4×4 register tiles plus a scalar column tail otherwise. strip is the
// packed 4-row A strip ([l*4+row], alpha folded in).
func micro4(useAsm bool, strip, bp, c0, c1, c2, c3 []float32, kc, nc int) {
	j := 0
	if hasAsmMicro && useAsm && kc > 0 {
		for ; j+8 <= nc; j += 8 {
			micro4x8(&strip[0], &bp[j], &c0[j], &c1[j], &c2[j], &c3[j], kc, 4*nc)
		}
	}
	for ; j+4 <= nc; j += 4 {
		// The 16 accumulators live in registers for the whole k block.
		s00, s01, s02, s03 := c0[j], c0[j+1], c0[j+2], c0[j+3]
		s10, s11, s12, s13 := c1[j], c1[j+1], c1[j+2], c1[j+3]
		s20, s21, s22, s23 := c2[j], c2[j+1], c2[j+2], c2[j+3]
		s30, s31, s32, s33 := c3[j], c3[j+1], c3[j+2], c3[j+3]
		for l := 0; l < kc; l++ {
			bl := bp[l*nc+j : l*nc+j+4 : l*nc+j+4]
			b0, b1, b2, b3 := bl[0], bl[1], bl[2], bl[3]
			al := strip[l*gemmMR4 : l*gemmMR4+gemmMR4 : l*gemmMR4+gemmMR4]
			if a := al[0]; a != 0 {
				s00 += a * b0
				s01 += a * b1
				s02 += a * b2
				s03 += a * b3
			}
			if a := al[1]; a != 0 {
				s10 += a * b0
				s11 += a * b1
				s12 += a * b2
				s13 += a * b3
			}
			if a := al[2]; a != 0 {
				s20 += a * b0
				s21 += a * b1
				s22 += a * b2
				s23 += a * b3
			}
			if a := al[3]; a != 0 {
				s30 += a * b0
				s31 += a * b1
				s32 += a * b2
				s33 += a * b3
			}
		}
		c0[j], c0[j+1], c0[j+2], c0[j+3] = s00, s01, s02, s03
		c1[j], c1[j+1], c1[j+2], c1[j+3] = s10, s11, s12, s13
		c2[j], c2[j+1], c2[j+2], c2[j+3] = s20, s21, s22, s23
		c3[j], c3[j+1], c3[j+2], c3[j+3] = s30, s31, s32, s33
	}
	for ; j < nc; j++ {
		s0, s1, s2, s3 := c0[j], c1[j], c2[j], c3[j]
		for l := 0; l < kc; l++ {
			b := bp[l*nc+j]
			al := strip[l*gemmMR4 : l*gemmMR4+gemmMR4 : l*gemmMR4+gemmMR4]
			if a := al[0]; a != 0 {
				s0 += a * b
			}
			if a := al[1]; a != 0 {
				s1 += a * b
			}
			if a := al[2]; a != 0 {
				s2 += a * b
			}
			if a := al[3]; a != 0 {
				s3 += a * b
			}
		}
		c0[j], c1[j], c2[j], c3[j] = s0, s1, s2, s3
	}
}

// micro1 computes one C row against the packed panels (remainder rows of a
// panel): 1×4 register tiles with a scalar tail, same ordering contract as
// the strip kernels.
func micro1(arow, bp, ci []float32, kc, nc int) {
	j := 0
	for ; j+4 <= nc; j += 4 {
		s0, s1, s2, s3 := ci[j], ci[j+1], ci[j+2], ci[j+3]
		for l := 0; l < kc; l++ {
			a := arow[l]
			if a == 0 {
				continue
			}
			bl := bp[l*nc+j : l*nc+j+4 : l*nc+j+4]
			s0 += a * bl[0]
			s1 += a * bl[1]
			s2 += a * bl[2]
			s3 += a * bl[3]
		}
		ci[j], ci[j+1], ci[j+2], ci[j+3] = s0, s1, s2, s3
	}
	for ; j < nc; j++ {
		s := ci[j]
		for l := 0; l < kc; l++ {
			if a := arow[l]; a != 0 {
				s += a * bp[l*nc+j]
			}
		}
		ci[j] = s
	}
}

// RowParallel is the execution resource GemmParallel shards row bands
// across. hostpool.Pool implements it; the indirection keeps the tensor
// package free of an execution-engine dependency.
type RowParallel interface {
	// Workers returns the concurrency bound.
	Workers() int
	// Run executes fn(0..tasks-1), possibly concurrently. Implementations
	// must run every task exactly once, return after all complete, and
	// report panicking tasks through the error instead of crashing worker
	// goroutines.
	Run(tasks int, fn func(task int)) error
}

// gemmMinBandRows is the smallest row band worth a parallel task: below
// this, packing overhead dominates and the serial path wins.
const gemmMinBandRows = 32

// GemmParallel is Gemm with the rows of C sharded into disjoint bands
// executed via p. Every band computes its rows with the same blocked kernel,
// the same panel geometry, and the same ascending-k accumulation the serial
// path uses, and bands touch disjoint C rows — so the result is bit-identical
// to Gemm at every band count, which is what makes the mode safe to enable
// under the convergence-invariance contract. A nil p, a single worker, or a
// small M falls back to the serial kernel.
func GemmParallel(p RowParallel, transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	GemmParallelFused(p, transA, transB, m, n, k, alpha, a, b, beta, c, nil)
}

// bandState carries one GemmParallelFused call's parameters to its band
// closure. Instances are pooled and each carries its fn (a closure over the
// instance) built once at first allocation, so a steady-state parallel call
// creates no funcval and captures nothing on the heap.
type bandState struct {
	transA, transB bool
	m, n, k        int
	alpha, beta    float32
	a, b, c        []float32
	epi            GemmEpilogue
	lv             ISA
	quo, rem       int
	fn             func(int)
}

var bandPool = sync.Pool{New: func() any {
	st := &bandState{}
	st.fn = st.run
	return st
}}

// run computes one row band: disjoint rows, same blocked kernel, same panel
// geometry and ascending-k order as the serial path.
func (st *bandState) run(band int) {
	i0 := band*st.quo + min(band, st.rem)
	i1 := i0 + st.quo
	if band < st.rem {
		i1++
	}
	gemmScaleBeta(st.beta, st.c[i0*st.n:i1*st.n])
	if st.k == 0 || st.alpha == 0 {
		applyEpilogueRows(st.epi, i0, i1, st.n, st.c)
		return
	}
	gemmBlocked(st.lv, st.transA, st.transB, i0, i1, st.m, st.n, st.k, st.alpha, st.a, st.b, st.c, st.epi)
}

// GemmParallelFused is GemmParallel with an optional fused epilogue: each
// band applies epi to its own (disjoint) completed rows, so the fused
// result is bitwise identical to GemmFused at any band count.
func GemmParallelFused(p RowParallel, transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32, epi GemmEpilogue) {
	bands := 0
	if p != nil {
		bands = min(p.Workers(), m/gemmMinBandRows)
	}
	if bands <= 1 {
		GemmFused(transA, transB, m, n, k, alpha, a, b, beta, c, epi)
		return
	}
	checkGemmDims(transA, transB, m, n, k, a, b, c)
	if n == 0 {
		return
	}
	st := bandPool.Get().(*bandState)
	st.transA, st.transB = transA, transB
	st.m, st.n, st.k = m, n, k
	st.alpha, st.beta = alpha, beta
	st.a, st.b, st.c = a, b, c
	st.epi = epi
	st.lv = ActiveISA() // read once: every band runs the same kernel
	st.quo, st.rem = m/bands, m%bands
	err := p.Run(bands, st.fn)
	st.a, st.b, st.c, st.epi = nil, nil, nil, nil // no liveness past the call
	bandPool.Put(st)
	if err != nil {
		// A band panic is a programming error (bad dims slipped past the
		// checks); re-panic like the serial kernel would, now with every
		// band accounted for instead of a dead worker goroutine.
		panic(err)
	}
}
