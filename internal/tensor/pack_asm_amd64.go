//go:build amd64 && !purego

package tensor

// hasAsmMicro selects the SSE2 micro-kernel inside micro4. SSE2 is part of
// the amd64 baseline, so no runtime feature detection is needed.
const hasAsmMicro = true

// micro4x8 is the SSE2 register-tile kernel: it accumulates a 4-row × 8-col
// block of C held in 8 XMM registers across kc ascending k steps.
//
//   - strip points at the packed 4-row A strip ([l*4+row], alpha folded in)
//   - b points at the packed B panel element bp[0*nc + j]; ldbBytes is the
//     byte stride between consecutive packed B rows (4*nc)
//   - c0..c3 point at the 8-element C row segments being updated
//
// Per-element arithmetic matches the scalar kernels bit for bit: each lane
// computes c += av*b in ascending-l order, a row whose av is zero is
// skipped (NaN av is not — the unordered compare falls through to the
// multiply), and lanes of MULPS/ADDPS round exactly like scalar MULSS/ADDSS.
//
//go:noescape
func micro4x8(strip, b, c0, c1, c2, c3 *float32, kc, ldbBytes int)
