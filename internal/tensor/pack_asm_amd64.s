//go:build amd64 && !purego

#include "textflag.h"

// func micro4x8(strip, b, c0, c1, c2, c3 *float32, kc, ldbBytes int)
//
// 4-row × 8-col SGEMM register tile. X0..X7 hold the C block for the whole
// k loop (two 4-wide vectors per row); each k step loads one packed B row
// pair, broadcasts the four packed A values (alpha already folded in), and
// accumulates c += av*b per lane. A row with av == 0 is skipped, matching
// the scalar kernel's short-circuit; the unordered (NaN) compare result
// falls through to the multiply so NaN propagation is identical too.
TEXT ·micro4x8(SB), NOSPLIT, $0-64
	MOVQ strip+0(FP), SI
	MOVQ b+8(FP), BX
	MOVQ c0+16(FP), R8
	MOVQ c1+24(FP), R9
	MOVQ c2+32(FP), R10
	MOVQ c3+40(FP), R11
	MOVQ kc+48(FP), CX
	MOVQ ldbBytes+56(FP), DX

	// Load the 4×8 C block into X0..X7.
	MOVUPS (R8), X0
	MOVUPS 16(R8), X1
	MOVUPS (R9), X2
	MOVUPS 16(R9), X3
	MOVUPS (R10), X4
	MOVUPS 16(R10), X5
	MOVUPS (R11), X6
	MOVUPS 16(R11), X7

	XORPS X14, X14 // constant zero for the av == 0 test

loop:
	MOVUPS (BX), X8    // b[j..j+3]
	MOVUPS 16(BX), X9  // b[j+4..j+7]

	// Row 0: av = strip[l*4+0]
	MOVSS   (SI), X10
	UCOMISS X14, X10
	JP      row0do  // unordered: av is NaN, compute
	JE      row1    // av == 0: skip row 0

row0do:
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X0
	MULPS  X9, X11
	ADDPS  X11, X1

row1:
	MOVSS   4(SI), X10
	UCOMISS X14, X10
	JP      row1do
	JE      row2

row1do:
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X2
	MULPS  X9, X11
	ADDPS  X11, X3

row2:
	MOVSS   8(SI), X10
	UCOMISS X14, X10
	JP      row2do
	JE      row3

row2do:
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X4
	MULPS  X9, X11
	ADDPS  X11, X5

row3:
	MOVSS   12(SI), X10
	UCOMISS X14, X10
	JP      row3do
	JE      next

row3do:
	SHUFPS $0x00, X10, X10
	MOVAPS X10, X11
	MULPS  X8, X10
	ADDPS  X10, X6
	MULPS  X9, X11
	ADDPS  X11, X7

next:
	ADDQ $16, SI // next packed A quad
	ADDQ DX, BX  // next packed B row
	DECQ CX
	JNZ  loop

	// Store the C block back.
	MOVUPS X0, (R8)
	MOVUPS X1, 16(R8)
	MOVUPS X2, (R9)
	MOVUPS X3, 16(R9)
	MOVUPS X4, (R10)
	MOVUPS X5, 16(R10)
	MOVUPS X6, (R11)
	MOVUPS X7, 16(R11)
	RET
