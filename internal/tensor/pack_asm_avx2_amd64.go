//go:build amd64 && !purego

package tensor

// micro8x8 is the AVX2 register-tile kernel: it accumulates an 8-row ×
// 8-col block of C held in 8 YMM registers across kc ascending k steps.
//
//   - strip points at the packed 8-row A strip ([l*8+row], alpha folded in)
//   - b points at the packed B panel element bp[0*nc + j]; ldbBytes is the
//     byte stride between consecutive packed B rows (4*nc)
//   - c points at the C element C[r*n + jc + j]; ldcBytes is the byte
//     stride between consecutive C rows (4*n)
//
// Per-element arithmetic matches the scalar and SSE2 kernels bit for bit:
// each lane computes c += av*b in ascending-l order with VMULPS/VADDPS
// (never FMA — see the .s file and DESIGN §7.5), a row whose av is zero is
// skipped (NaN av is not — the unordered compare falls through to the
// multiply), and lanes round exactly like scalar MULSS/ADDSS.
//
// Callers must only dispatch here when ActiveISA() == ISAAVX2 — the
// instruction stream requires AVX2 plus OS YMM-state support (detectISA).
//
//go:noescape
func micro8x8(strip, b, c *float32, kc, ldbBytes, ldcBytes int)
