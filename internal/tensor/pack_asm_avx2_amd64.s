//go:build amd64 && !purego

#include "textflag.h"

// func micro8x8(strip, b, c *float32, kc, ldbBytes, ldcBytes int)
//
// 8-row × 8-col SGEMM register tile, the ISAAVX2 rung of the dispatch
// ladder. Y0..Y7 hold the C block for the whole k loop (one 8-wide vector
// per row); each k step loads one packed B row, broadcasts the eight packed
// A values (alpha already folded in), and accumulates c += av*b per lane
// with VMULPS + VADDPS.
//
// Deliberately NO FMA (VFMADD*): a fused multiply-add rounds once where the
// scalar reference rounds twice, which would break the bit-identity
// contract every convergence-invariance test pins. FMA stays a documented
// future opt-in alongside the accuracy-gated reduced-precision paths.
//
// A row with av == 0 is skipped, matching the scalar kernel's
// short-circuit; the unordered (NaN) compare result falls through to the
// multiply so NaN propagation is identical too. VMULPS/VADDPS lanes round
// exactly like scalar MULSS/ADDSS, so every element matches the pure-Go and
// SSE2 kernels bit for bit.
TEXT ·micro8x8(SB), NOSPLIT, $0-48
	MOVQ strip+0(FP), SI
	MOVQ b+8(FP), BX
	MOVQ c+16(FP), R8
	MOVQ kc+24(FP), CX
	MOVQ ldbBytes+32(FP), DX
	MOVQ ldcBytes+40(FP), R9

	// Row-address multiples of ldc for the strided C block.
	LEAQ (R9)(R9*2), R12 // 3*ldc
	LEAQ (R9)(R9*4), R13 // 5*ldc
	LEAQ (R12)(R9*4), R14 // 7*ldc

	// Load the 8×8 C block into Y0..Y7.
	VMOVUPS (R8), Y0
	VMOVUPS (R8)(R9*1), Y1
	VMOVUPS (R8)(R9*2), Y2
	VMOVUPS (R8)(R12*1), Y3
	VMOVUPS (R8)(R9*4), Y4
	VMOVUPS (R8)(R13*1), Y5
	VMOVUPS (R8)(R12*2), Y6
	VMOVUPS (R8)(R14*1), Y7

	VXORPS X14, X14, X14 // constant zero for the av == 0 test

loop:
	VMOVUPS (BX), Y8 // b[j..j+7]

	// Row 0: av = strip[l*8+0]
	VMOVSS   (SI), X10
	VUCOMISS X14, X10
	JP       row0do // unordered: av is NaN, compute
	JE       row1   // av == 0: skip row 0

row0do:
	VBROADCASTSS (SI), Y10
	VMULPS       Y8, Y10, Y10
	VADDPS       Y10, Y0, Y0

row1:
	VMOVSS   4(SI), X10
	VUCOMISS X14, X10
	JP       row1do
	JE       row2

row1do:
	VBROADCASTSS 4(SI), Y10
	VMULPS       Y8, Y10, Y10
	VADDPS       Y10, Y1, Y1

row2:
	VMOVSS   8(SI), X10
	VUCOMISS X14, X10
	JP       row2do
	JE       row3

row2do:
	VBROADCASTSS 8(SI), Y10
	VMULPS       Y8, Y10, Y10
	VADDPS       Y10, Y2, Y2

row3:
	VMOVSS   12(SI), X10
	VUCOMISS X14, X10
	JP       row3do
	JE       row4

row3do:
	VBROADCASTSS 12(SI), Y10
	VMULPS       Y8, Y10, Y10
	VADDPS       Y10, Y3, Y3

row4:
	VMOVSS   16(SI), X10
	VUCOMISS X14, X10
	JP       row4do
	JE       row5

row4do:
	VBROADCASTSS 16(SI), Y10
	VMULPS       Y8, Y10, Y10
	VADDPS       Y10, Y4, Y4

row5:
	VMOVSS   20(SI), X10
	VUCOMISS X14, X10
	JP       row5do
	JE       row6

row5do:
	VBROADCASTSS 20(SI), Y10
	VMULPS       Y8, Y10, Y10
	VADDPS       Y10, Y5, Y5

row6:
	VMOVSS   24(SI), X10
	VUCOMISS X14, X10
	JP       row6do
	JE       row7

row6do:
	VBROADCASTSS 24(SI), Y10
	VMULPS       Y8, Y10, Y10
	VADDPS       Y10, Y6, Y6

row7:
	VMOVSS   28(SI), X10
	VUCOMISS X14, X10
	JP       row7do
	JE       next

row7do:
	VBROADCASTSS 28(SI), Y10
	VMULPS       Y8, Y10, Y10
	VADDPS       Y10, Y7, Y7

next:
	ADDQ $32, SI // next packed A octet
	ADDQ DX, BX  // next packed B row
	DECQ CX
	JNZ  loop

	// Store the C block back.
	VMOVUPS Y0, (R8)
	VMOVUPS Y1, (R8)(R9*1)
	VMOVUPS Y2, (R8)(R9*2)
	VMOVUPS Y3, (R8)(R12*1)
	VMOVUPS Y4, (R8)(R9*4)
	VMOVUPS Y5, (R8)(R13*1)
	VMOVUPS Y6, (R8)(R12*2)
	VMOVUPS Y7, (R8)(R14*1)
	VZEROUPPER
	RET
