//go:build !amd64 || purego

package tensor

// hasAsmMicro is false without an assembly micro-kernel; micro4 runs its
// portable Go register-tile path instead, and the dispatch ladder tops out
// at ISAPureGo (see isa_noasm.go), so neither stub below is reachable.
const hasAsmMicro = false

// micro4x8 is unreachable when hasAsmMicro is false.
func micro4x8(strip, b, c0, c1, c2, c3 *float32, kc, ldbBytes int) {
	panic("tensor: micro4x8 called without assembly support")
}

// micro8x8 is unreachable when the ladder tops out at ISAPureGo.
func micro8x8(strip, b, c *float32, kc, ldbBytes, ldcBytes int) {
	panic("tensor: micro8x8 called without assembly support")
}
