//go:build !amd64 || purego

package tensor

// hasAsmMicro is false without an assembly micro-kernel; micro4 runs its
// portable Go register-tile path instead.
const hasAsmMicro = false

// micro4x8 is unreachable when hasAsmMicro is false.
func micro4x8(strip, b, c0, c1, c2, c3 *float32, kc, ldbBytes int) {
	panic("tensor: micro4x8 called without assembly support")
}
