package tensor

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/hostpool"
)

// bitsEqual reports whether two float32 slices are bit-for-bit identical and
// returns the first differing index.
func bitsEqual(a, b []float32) (int, bool) {
	for i := range a {
		if math.Float32bits(a[i]) != math.Float32bits(b[i]) {
			return i, false
		}
	}
	return -1, true
}

// sprinkleZeros zeroes roughly one in eight elements so the blocked kernel's
// per-row av == 0 skip path is exercised, not just the dense fast path.
func sprinkleZeros(rng *rand.Rand, s []float32) {
	for i := range s {
		if rng.Intn(8) == 0 {
			s[i] = 0
		}
	}
}

func checkGemmAgainstNaive(t *testing.T, rng *rand.Rand, ta, tb bool, m, n, k int, alpha, beta float32) {
	t.Helper()
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	sprinkleZeros(rng, a)
	c0 := randSlice(rng, m*n)

	got := append([]float32(nil), c0...)
	want := append([]float32(nil), c0...)
	Gemm(ta, tb, m, n, k, alpha, a, b, beta, got)
	gemmNaive(ta, tb, m, n, k, alpha, a, b, beta, want)
	if i, ok := bitsEqual(got, want); !ok {
		t.Fatalf("ta=%v tb=%v m=%d n=%d k=%d alpha=%v beta=%v: C[%d] = %x want %x",
			ta, tb, m, n, k, alpha, beta, i,
			math.Float32bits(got[i]), math.Float32bits(want[i]))
	}
}

// TestGemmBitIdenticalToNaive sweeps the blocked kernel against the retained
// naive kernel over all four transpose combinations, odd/prime sizes that
// straddle every blocking boundary (MR=4, j-tile 8, MC=64, KC=256, NC=512),
// and the alpha/beta edge cases, asserting bit-for-bit identity.
func TestGemmBitIdenticalToNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []struct{ m, n, k int }{
		{1, 1, 1},
		{3, 5, 7},
		{4, 8, 16},
		{5, 9, 3},
		{13, 17, 31},
		{31, 7, 257},    // k crosses one KC boundary with a prime tail
		{67, 13, 300},   // m crosses MC
		{7, 519, 11},    // n crosses NC with an odd tail
		{65, 513, 257},  // all three block boundaries at once, odd tails
		{128, 129, 256}, // exact KC block, j tail of 1
		{2, 1031, 5},    // prime n > 2*NC
	}
	alphas := []float32{1, -1, 0.5, 2, 0}
	betas := []float32{0, 1, 2, -0.5}
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			for _, s := range sizes {
				checkGemmAgainstNaive(t, rng, ta, tb, s.m, s.n, s.k, alphas[rng.Intn(len(alphas))], betas[rng.Intn(len(betas))])
			}
			// Edge alphas/betas on one boundary-straddling size.
			for _, al := range alphas {
				for _, be := range betas {
					checkGemmAgainstNaive(t, rng, ta, tb, 65, 513, 257, al, be)
				}
			}
		}
	}
}

// TestGemmBitIdenticalRandomized is the property test: random shapes around
// and beyond the blocking boundaries, random coefficients, random zero
// sprinkling, always bit-identical to the naive kernel.
func TestGemmBitIdenticalRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	coef := []float32{0, 1, -1, 0.5, -0.25, 2, 3}
	for trial := 0; trial < 200; trial++ {
		m := 1 + rng.Intn(100)
		n := 1 + rng.Intn(600)
		k := 1 + rng.Intn(320)
		checkGemmAgainstNaive(t, rng,
			rng.Intn(2) == 0, rng.Intn(2) == 0,
			m, n, k, coef[rng.Intn(len(coef))], coef[rng.Intn(len(coef))])
	}
}

// FuzzGemmBitIdentical lets the fuzzer hunt for shape/coefficient corners
// where the blocked kernel diverges from the naive one.
func FuzzGemmBitIdentical(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), uint8(7), false, false, float32(1), float32(0))
	f.Add(int64(2), uint8(65), uint8(130), uint8(129), true, true, float32(-0.5), float32(2))
	f.Add(int64(3), uint8(4), uint8(16), uint8(255), false, true, float32(0), float32(1))
	f.Fuzz(func(t *testing.T, seed int64, m8, n8, k8 uint8, ta, tb bool, alpha, beta float32) {
		m, n, k := int(m8)+1, int(n8)+1, int(k8)+1
		if math.IsNaN(float64(alpha)) || math.IsNaN(float64(beta)) {
			// NaN coefficients poison every element equally in both kernels
			// but make failure messages useless; keep the fuzz space finite.
			return
		}
		rng := rand.New(rand.NewSource(seed))
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		sprinkleZeros(rng, a)
		c0 := randSlice(rng, m*n)
		got := append([]float32(nil), c0...)
		want := append([]float32(nil), c0...)
		Gemm(ta, tb, m, n, k, alpha, a, b, beta, got)
		gemmNaive(ta, tb, m, n, k, alpha, a, b, beta, want)
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("ta=%v tb=%v m=%d n=%d k=%d alpha=%v beta=%v: C[%d] = %x want %x",
				ta, tb, m, n, k, alpha, beta, i,
				math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	})
}

// serialBands runs tasks sequentially while advertising the given worker
// count — it pins GemmParallel's banding math at an exact width without
// depending on scheduler behavior.
type serialBands struct{ workers int }

func (s serialBands) Workers() int { return s.workers }
func (s serialBands) Run(tasks int, fn func(int)) error {
	for i := 0; i < tasks; i++ {
		fn(i)
	}
	return nil
}

// TestGemmParallelBitIdenticalAtEveryWidth checks the row-band mode against
// the naive kernel at widths 1, 2, 3, and 4 for all transpose combinations,
// including an M that doesn't divide evenly into bands.
func TestGemmParallelBitIdenticalAtEveryWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, width := range []int{1, 2, 3, 4} {
		for _, ta := range []bool{false, true} {
			for _, tb := range []bool{false, true} {
				m, n, k := 70+rng.Intn(80), 1+rng.Intn(520), 1+rng.Intn(300)
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				sprinkleZeros(rng, a)
				c0 := randSlice(rng, m*n)
				got := append([]float32(nil), c0...)
				want := append([]float32(nil), c0...)
				GemmParallel(serialBands{width}, ta, tb, m, n, k, 1, a, b, 1, got)
				gemmNaive(ta, tb, m, n, k, 1, a, b, 1, want)
				if i, ok := bitsEqual(got, want); !ok {
					t.Fatalf("width=%d ta=%v tb=%v m=%d n=%d k=%d: C[%d] differs", width, ta, tb, m, n, k, i)
				}
			}
		}
	}
}

// TestGemmParallelOnHostpool runs the row-band mode on a real worker pool
// (goroutines, shared sync.Pool arena) and checks bit-identity; under
// `go test -race` this also proves the bands are race-free.
func TestGemmParallelOnHostpool(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, workers := range []int{1, 2, 4} {
		pool := hostpool.New(workers)
		m, n, k := 128, 257, 129
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		c0 := randSlice(rng, m*n)
		got := append([]float32(nil), c0...)
		want := append([]float32(nil), c0...)
		GemmParallel(pool, false, false, m, n, k, 1, a, b, 0, got)
		gemmNaive(false, false, m, n, k, 1, a, b, 0, want)
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("workers=%d: C[%d] differs", workers, i)
		}
	}
}

// TestGemmParallelSmallMFallsBack pins the serial fallback: below the band
// threshold the parallel entry point must not split rows at all.
func TestGemmParallelSmallMFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	m, n, k := gemmMinBandRows-1, 40, 20
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	got := make([]float32, m*n)
	want := make([]float32, m*n)
	GemmParallel(serialBands{8}, false, false, m, n, k, 1, a, b, 0, got)
	Gemm(false, false, m, n, k, 1, a, b, 0, want)
	if i, ok := bitsEqual(got, want); !ok {
		t.Fatalf("fallback differs at %d", i)
	}
}

// TestIm2colFastPathMatchesScalar cross-checks the stride-1 bulk-copy rows
// against a scalar re-derivation, including kernels wider than the padded
// image row (all-padding interior spans).
func TestIm2colFastPathMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	geoms := []ConvGeom{
		{Channels: 2, Height: 9, Width: 9, KernelH: 3, KernelW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
		{Channels: 1, Height: 5, Width: 4, KernelH: 3, KernelW: 4, StrideH: 1, StrideW: 1, PadH: 2, PadW: 3},
		{Channels: 3, Height: 7, Width: 6, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2},
		{Channels: 1, Height: 3, Width: 2, KernelH: 1, KernelW: 4, StrideH: 1, StrideW: 1, PadH: 0, PadW: 2},
	}
	for _, g := range geoms {
		img := randSlice(rng, g.Channels*g.Height*g.Width)
		got := make([]float32, g.ColRows()*g.ColCols())
		Im2col(img, g, got)
		want := im2colScalar(img, g)
		if i, ok := bitsEqual(got, want); !ok {
			t.Fatalf("geom %+v: col[%d] = %v want %v", g, i, got[i], want[i])
		}

		// And the adjoint's fast path against its scalar re-derivation.
		col := randSlice(rng, g.ColRows()*g.ColCols())
		gotImg := make([]float32, g.Channels*g.Height*g.Width)
		Col2im(col, g, gotImg)
		wantImg := col2imScalar(col, g)
		if i, ok := bitsEqual(gotImg, wantImg); !ok {
			t.Fatalf("geom %+v: img[%d] = %v want %v", g, i, gotImg[i], wantImg[i])
		}
	}
}

// im2colScalar is the pre-fast-path element-at-a-time expansion.
func im2colScalar(img []float32, g ConvGeom) []float32 {
	oh, ow := g.OutH(), g.OutW()
	col := make([]float32, g.ColRows()*g.ColCols())
	idx := 0
	for c := 0; c < g.Channels; c++ {
		plane := img[c*g.Height*g.Width:]
		for kh := 0; kh < g.KernelH; kh++ {
			for kw := 0; kw < g.KernelW; kw++ {
				for y := 0; y < oh; y++ {
					iy := y*g.StrideH - g.PadH + kh
					for x := 0; x < ow; x++ {
						ix := x*g.StrideW - g.PadW + kw
						if iy >= 0 && iy < g.Height && ix >= 0 && ix < g.Width {
							col[idx] = plane[iy*g.Width+ix]
						}
						idx++
					}
				}
			}
		}
	}
	return col
}

// col2imScalar is the pre-fast-path element-at-a-time scatter.
func col2imScalar(col []float32, g ConvGeom) []float32 {
	oh, ow := g.OutH(), g.OutW()
	img := make([]float32, g.Channels*g.Height*g.Width)
	idx := 0
	for c := 0; c < g.Channels; c++ {
		plane := img[c*g.Height*g.Width:]
		for kh := 0; kh < g.KernelH; kh++ {
			for kw := 0; kw < g.KernelW; kw++ {
				for y := 0; y < oh; y++ {
					iy := y*g.StrideH - g.PadH + kh
					for x := 0; x < ow; x++ {
						ix := x*g.StrideW - g.PadW + kw
						if iy >= 0 && iy < g.Height && ix >= 0 && ix < g.Width {
							plane[iy*g.Width+ix] += col[idx]
						}
						idx++
					}
				}
			}
		}
	}
	return img
}
