//go:build !race

package tensor

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = false
