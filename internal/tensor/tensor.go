// Package tensor provides the dense float32 n-dimensional arrays and the
// small BLAS subset (GEMM, GEMV, AXPY, im2col/col2im) that the Caffe-like
// framework in internal/dnn computes with. Layout is row-major (Caffe's
// N×C×H×W convention for 4-D blobs). All math runs on the host CPU: in this
// reproduction the GPU is simulated for *timing*, while numerical results
// are real so convergence experiments are genuine.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense row-major float32 array with an explicit shape.
type Tensor struct {
	shape []int
	data  []float32
}

// New allocates a zeroed tensor with the given shape. A zero-dimensional
// tensor holds one scalar element.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d in %v", d, shape))
		}
		n *= d
	}
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice wraps data in a tensor of the given shape; the slice is used
// directly, not copied.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v needs %d elements, slice has %d", shape, n, len(data)))
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Shape returns the tensor's dimensions (not a copy; callers must not
// mutate).
func (t *Tensor) Shape() []int { return t.shape }

// Dim returns the i-th dimension.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// NumDims returns the rank.
func (t *Tensor) NumDims() int { return len(t.shape) }

// Len returns the total element count.
func (t *Tensor) Len() int { return len(t.data) }

// Data exposes the backing slice.
func (t *Tensor) Data() []float32 { return t.data }

// At reads the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.Offset(idx...)] }

// Set writes the element at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.Offset(idx...)] = v }

// Offset converts a multi-index to a flat offset.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d vs shape rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.shape))
		}
		off = off*t.shape[i] + x
	}
	return off
}

// Reshape reinterprets the tensor with a new shape of the same size.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (%d elems) to %v (%d elems)",
			t.shape, len(t.data), shape, n))
	}
	t.shape = append(t.shape[:0], shape...)
	return t
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t; shapes must have equal element counts.
func (t *Tensor) CopyFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic(fmt.Sprintf("tensor: copy size mismatch %d vs %d", len(src.data), len(t.data)))
	}
	copy(t.data, src.data)
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// Fill sets all elements to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Scale multiplies all elements by a.
func (t *Tensor) Scale(a float32) {
	if a == 1 {
		return
	}
	for i := range t.data {
		t.data[i] *= a
	}
}

// AddFrom accumulates src into t element-wise.
func (t *Tensor) AddFrom(src *Tensor) {
	if len(src.data) != len(t.data) {
		panic("tensor: AddFrom size mismatch")
	}
	for i, v := range src.data {
		t.data[i] += v
	}
}

// Sum returns the element sum in float64 for accuracy.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// AbsSum returns the L1 norm (Caffe's asum, used for loss and debug).
func (t *Tensor) AbsSum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += math.Abs(float64(v))
	}
	return s
}

// SquaredSum returns the L2 norm squared.
func (t *Tensor) SquaredSum() float64 {
	s := 0.0
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return s
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two same-sized tensors (test helper for invariance checks).
func MaxAbsDiff(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		panic("tensor: MaxAbsDiff size mismatch")
	}
	m := 0.0
	for i := range a.data {
		d := math.Abs(float64(a.data[i]) - float64(b.data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// Equal reports whether two tensors have identical shape and bitwise-equal
// data (the paper's convergence-invariance is "no parameter changes"; our
// test asserts this exactly).
func Equal(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	for i := range a.data {
		if math.Float32bits(a.data[i]) != math.Float32bits(b.data[i]) {
			return false
		}
	}
	return true
}

// String renders a short description plus up to eight leading values.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tensor%v[", t.shape)
	n := len(t.data)
	if n > 8 {
		n = 8
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if n < len(t.data) {
		b.WriteString(" ...")
	}
	b.WriteString("]")
	return b.String()
}
