package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndIndexing(t *testing.T) {
	a := New(2, 3, 4)
	if a.Len() != 24 || a.NumDims() != 3 || a.Dim(1) != 3 {
		t.Fatalf("bad dims: len=%d rank=%d", a.Len(), a.NumDims())
	}
	a.Set(7, 1, 2, 3)
	if a.At(1, 2, 3) != 7 {
		t.Fatal("Set/At roundtrip failed")
	}
	if a.Offset(1, 2, 3) != 1*12+2*4+3 {
		t.Fatalf("offset = %d", a.Offset(1, 2, 3))
	}
}

func TestIndexPanics(t *testing.T) {
	a := New(2, 2)
	assertPanics(t, func() { a.At(2, 0) })
	assertPanics(t, func() { a.At(0) })
	assertPanics(t, func() { New(-1) })
	assertPanics(t, func() { a.Reshape(3, 3) })
	assertPanics(t, func() { FromSlice([]float32{1, 2, 3}, 2, 2) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestReshapeAndClone(t *testing.T) {
	a := New(2, 6)
	a.Set(5, 1, 3)
	a.Reshape(3, 4)
	if a.At(2, 1) != 5 { // flat offset 9 in both shapes
		t.Fatal("reshape moved data")
	}
	c := a.Clone()
	c.Set(9, 0, 0)
	if a.At(0, 0) == 9 {
		t.Fatal("clone aliases data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, -2, 3}, 3)
	b := FromSlice([]float32{10, 20, 30}, 3)
	a.AddFrom(b)
	if a.At(1) != 18 {
		t.Fatalf("AddFrom: %v", a)
	}
	a.Scale(2)
	if a.At(0) != 22 {
		t.Fatalf("Scale: %v", a)
	}
	a.Fill(1.5)
	if a.Sum() != 4.5 {
		t.Fatalf("Fill/Sum: %v", a.Sum())
	}
	a.Zero()
	if a.AbsSum() != 0 {
		t.Fatal("Zero failed")
	}
	c := FromSlice([]float32{3, -4}, 2)
	if c.SquaredSum() != 25 {
		t.Fatalf("SquaredSum = %v", c.SquaredSum())
	}
}

func TestEqualAndMaxAbsDiff(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{1, 2}, 2)
	if !Equal(a, b) {
		t.Fatal("equal tensors reported unequal")
	}
	b.Set(2.5, 1)
	if Equal(a, b) {
		t.Fatal("unequal tensors reported equal")
	}
	if MaxAbsDiff(a, b) != 0.5 {
		t.Fatalf("MaxAbsDiff = %v", MaxAbsDiff(a, b))
	}
	c := FromSlice([]float32{1, 2}, 1, 2)
	if Equal(a, c) {
		t.Fatal("different shapes reported equal")
	}
}

// gemmRef is the straightforward triple loop used as ground truth.
func gemmRef(transA, transB bool, m, n, k int, alpha float32, a, b []float32, beta float32, c []float32) {
	at := func(i, l int) float32 {
		if transA {
			return a[l*m+i]
		}
		return a[i*k+l]
	}
	bt := func(l, j int) float32 {
		if transB {
			return b[j*k+l]
		}
		return b[l*n+j]
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := float32(0)
			for l := 0; l < k; l++ {
				s += at(i, l) * bt(l, j)
			}
			c[i*n+j] = alpha*s + beta*c[i*n+j]
		}
	}
}

func TestGemmAllTransposeCombos(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			for trial := 0; trial < 8; trial++ {
				m, n, k := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				c0 := randSlice(rng, m*n)
				alpha := float32(rng.NormFloat64())
				beta := float32(rng.NormFloat64())

				got := append([]float32(nil), c0...)
				want := append([]float32(nil), c0...)
				Gemm(ta, tb, m, n, k, alpha, a, b, beta, got)
				gemmRef(ta, tb, m, n, k, alpha, a, b, beta, want)
				for i := range got {
					if math.Abs(float64(got[i]-want[i])) > 1e-3 {
						t.Fatalf("ta=%v tb=%v m=%d n=%d k=%d: C[%d]=%v want %v",
							ta, tb, m, n, k, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestGemmEdgeCases(t *testing.T) {
	// k=0 with beta=0 zeroes C; alpha=0 leaves beta*C.
	c := []float32{1, 2, 3, 4}
	Gemm(false, false, 2, 2, 0, 1, nil, nil, 0, c)
	for _, v := range c {
		if v != 0 {
			t.Fatalf("k=0 beta=0 left %v", c)
		}
	}
	c = []float32{1, 2, 3, 4}
	a := []float32{1, 1, 1, 1}
	b := []float32{1, 1, 1, 1}
	Gemm(false, false, 2, 2, 2, 0, a, b, 2, c)
	if c[0] != 2 || c[3] != 8 {
		t.Fatalf("alpha=0 beta=2: %v", c)
	}
	// m=0 / n=0 are no-ops.
	Gemm(false, false, 0, 2, 2, 1, a, b, 1, nil)
	assertPanics(t, func() { Gemm(false, false, 2, 2, 2, 1, a[:3], b, 1, c) })
	assertPanics(t, func() { Gemm(false, false, -1, 2, 2, 1, a, b, 1, c) })
}

func TestQuickGemmMatchesReference(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n, k := 1+rng.Intn(20), 1+rng.Intn(20), 1+rng.Intn(20)
		ta, tb := rng.Intn(2) == 0, rng.Intn(2) == 0
		a := randSlice(rng, m*k)
		b := randSlice(rng, k*n)
		got := randSlice(rng, m*n)
		want := append([]float32(nil), got...)
		Gemm(ta, tb, m, n, k, 1, a, b, 1, got)
		gemmRef(ta, tb, m, n, k, 1, a, b, 1, want)
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGemv(t *testing.T) {
	// A = [[1,2],[3,4],[5,6]] (3×2)
	a := []float32{1, 2, 3, 4, 5, 6}
	x := []float32{1, 1}
	y := make([]float32, 3)
	Gemv(false, 3, 2, 1, a, x, 0, y)
	want := []float32{3, 7, 11}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("Gemv: %v want %v", y, want)
		}
	}
	// transposed: Aᵀ·[1,1,1] = [9,12]
	x3 := []float32{1, 1, 1}
	y2 := make([]float32, 2)
	Gemv(true, 3, 2, 1, a, x3, 0, y2)
	if y2[0] != 9 || y2[1] != 12 {
		t.Fatalf("Gemv trans: %v", y2)
	}
	// beta accumulate
	Gemv(false, 3, 2, 1, a, x, 1, y)
	if y[0] != 6 {
		t.Fatalf("Gemv beta=1: %v", y)
	}
	assertPanics(t, func() { Gemv(false, 3, 2, 1, a, x[:1], 0, y) })
}

func TestVectorOps(t *testing.T) {
	x := []float32{1, 2, 3}
	y := []float32{10, 10, 10}
	Axpy(2, x, y)
	if y[2] != 16 {
		t.Fatalf("Axpy: %v", y)
	}
	Axpby(1, x, 0.5, y)
	if y[0] != 7 {
		t.Fatalf("Axpby: %v", y)
	}
	Scal(2, x)
	if x[1] != 4 {
		t.Fatalf("Scal: %v", x)
	}
	if Dot([]float32{1, 2}, []float32{3, 4}) != 11 {
		t.Fatal("Dot")
	}
	assertPanics(t, func() { Dot([]float32{1}, []float32{1, 2}) })
	assertPanics(t, func() { Axpy(1, x, y[:1]) })
}

func TestConvGeom(t *testing.T) {
	// CaffeNet conv1: 227×227, 11×11 filter, stride 4, no pad → 55×55.
	g := ConvGeom{Channels: 3, Height: 227, Width: 227, KernelH: 11, KernelW: 11, StrideH: 4, StrideW: 4}
	if g.OutH() != 55 || g.OutW() != 55 {
		t.Fatalf("CaffeNet conv1 out = %dx%d, want 55x55", g.OutH(), g.OutW())
	}
	// CIFAR10 conv1: 32×32, 5×5, stride 1, pad 2 → 32×32.
	g2 := ConvGeom{Channels: 3, Height: 32, Width: 32, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	if g2.OutH() != 32 || g2.OutW() != 32 {
		t.Fatalf("CIFAR10 conv1 out = %dx%d, want 32x32", g2.OutH(), g2.OutW())
	}
	if g2.ColRows() != 3*25 || g2.ColCols() != 32*32 {
		t.Fatal("col dims wrong")
	}
}

// convRef computes direct convolution as ground truth for the im2col+GEMM
// path.
func convRef(img []float32, g ConvGeom, w []float32, co int) []float32 {
	oh, ow := g.OutH(), g.OutW()
	out := make([]float32, co*oh*ow)
	for o := 0; o < co; o++ {
		for y := 0; y < oh; y++ {
			for x := 0; x < ow; x++ {
				s := float32(0)
				for c := 0; c < g.Channels; c++ {
					for kh := 0; kh < g.KernelH; kh++ {
						for kw := 0; kw < g.KernelW; kw++ {
							iy := y*g.StrideH - g.PadH + kh
							ix := x*g.StrideW - g.PadW + kw
							if iy < 0 || iy >= g.Height || ix < 0 || ix >= g.Width {
								continue
							}
							wv := w[((o*g.Channels+c)*g.KernelH+kh)*g.KernelW+kw]
							s += wv * img[(c*g.Height+iy)*g.Width+ix]
						}
					}
				}
				out[(o*oh+y)*ow+x] = s
			}
		}
	}
	return out
}

func TestIm2colGemmMatchesDirectConv(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := ConvGeom{Channels: 3, Height: 8, Width: 7, KernelH: 3, KernelW: 2, StrideH: 2, StrideW: 1, PadH: 1, PadW: 1}
	co := 4
	img := randSlice(rng, g.Channels*g.Height*g.Width)
	w := randSlice(rng, co*g.ColRows())
	col := make([]float32, g.ColRows()*g.ColCols())
	Im2col(img, g, col)
	got := make([]float32, co*g.ColCols())
	Gemm(false, false, co, g.ColCols(), g.ColRows(), 1, w, col, 0, got)
	want := convRef(img, g, w, co)
	for i := range want {
		if math.Abs(float64(got[i]-want[i])) > 1e-4 {
			t.Fatalf("conv mismatch at %d: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestQuickCol2imIsAdjointOfIm2col checks the defining property of the
// adjoint: ⟨im2col(x), y⟩ = ⟨x, col2im(y)⟩ for random x, y, geometry.
func TestQuickCol2imIsAdjointOfIm2col(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ConvGeom{
			Channels: 1 + rng.Intn(3),
			Height:   3 + rng.Intn(6),
			Width:    3 + rng.Intn(6),
			KernelH:  1 + rng.Intn(3),
			KernelW:  1 + rng.Intn(3),
			StrideH:  1 + rng.Intn(2),
			StrideW:  1 + rng.Intn(2),
			PadH:     rng.Intn(2),
			PadW:     rng.Intn(2),
		}
		if g.OutH() <= 0 || g.OutW() <= 0 {
			return true
		}
		x := randSlice(rng, g.Channels*g.Height*g.Width)
		y := randSlice(rng, g.ColRows()*g.ColCols())
		cx := make([]float32, len(y))
		Im2col(x, g, cx)
		xy := Dot(cx, y)
		back := make([]float32, len(x))
		Col2im(y, g, back)
		yx := Dot(x, back)
		return math.Abs(xy-yx) < 1e-2*(1+math.Abs(xy))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIm2colSizePanics(t *testing.T) {
	g := ConvGeom{Channels: 1, Height: 4, Width: 4, KernelH: 2, KernelW: 2, StrideH: 1, StrideW: 1}
	assertPanics(t, func() { Im2col(make([]float32, 3), g, make([]float32, 100)) })
	assertPanics(t, func() { Im2col(make([]float32, 16), g, make([]float32, 3)) })
	assertPanics(t, func() { Col2im(make([]float32, 3), g, make([]float32, 16)) })
	assertPanics(t, func() { Col2im(make([]float32, 100), g, make([]float32, 3)) })
}

func TestFillers(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	w := New(32, 16, 3, 3) // fan-in 144

	ConstantFiller{Value: 2}.Fill(w, rng)
	if w.Sum() != float64(2*w.Len()) {
		t.Fatal("constant filler")
	}

	UniformFiller{Min: -1, Max: 1}.Fill(w, rng)
	for _, v := range w.Data() {
		if v < -1 || v >= 1 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}

	GaussianFiller{Mean: 0, Std: 0.1}.Fill(w, rng)
	std := math.Sqrt(w.SquaredSum() / float64(w.Len()))
	if std < 0.08 || std > 0.12 {
		t.Fatalf("gaussian std = %v, want ≈0.1", std)
	}

	XavierFiller{}.Fill(w, rng)
	bound := math.Sqrt(3.0 / 144.0)
	for _, v := range w.Data() {
		if float64(v) < -bound || float64(v) > bound {
			t.Fatalf("xavier out of ±%v: %v", bound, v)
		}
	}

	MSRAFiller{}.Fill(w, rng)
	std = math.Sqrt(w.SquaredSum() / float64(w.Len()))
	wantStd := math.Sqrt(2.0 / 144.0)
	if std < wantStd*0.8 || std > wantStd*1.2 {
		t.Fatalf("msra std = %v, want ≈%v", std, wantStd)
	}

	// Determinism given the same seed.
	a, b := New(8), New(8)
	XavierFiller{}.Fill(a, rand.New(rand.NewSource(1)))
	XavierFiller{}.Fill(b, rand.New(rand.NewSource(1)))
	if !Equal(a, b) {
		t.Fatal("filler not deterministic under fixed seed")
	}
}

func TestStringRendering(t *testing.T) {
	a := New(3, 4)
	s := a.String()
	if s == "" {
		t.Fatal("empty String")
	}
	big := New(100)
	if bs := big.String(); len(bs) > 200 {
		t.Fatalf("String of big tensor too long: %d chars", len(bs))
	}
}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func BenchmarkGemm128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 128
	a := randSlice(rng, n*n)
	bb := randSlice(rng, n*n)
	c := make([]float32, n*n)
	b.SetBytes(int64(2 * n * n * n)) // FLOPs as "bytes" proxy
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Gemm(false, false, n, n, n, 1, a, bb, 0, c)
	}
}

func BenchmarkIm2colCIFAR(b *testing.B) {
	g := ConvGeom{Channels: 3, Height: 32, Width: 32, KernelH: 5, KernelW: 5, StrideH: 1, StrideW: 1, PadH: 2, PadW: 2}
	img := make([]float32, g.Channels*g.Height*g.Width)
	col := make([]float32, g.ColRows()*g.ColCols())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2col(img, g, col)
	}
}
